"""Content-addressed campaign result store: sharded segments + SQL index.

Every campaign worth keeping becomes a fingerprinted, queryable
artifact: outcome counts, register/bit histograms, per-injection
``(register, bit, outcome, divergence)`` tuples, SDC quality
distributions and divergence attributions, stored under a
**content-addressed campaign id** — the SHA-256 of the record's
canonical JSON — so identical campaigns collapse to one entry and a
record can never drift from its id unnoticed.

Two on-disk layouts share one :class:`CampaignStore` facade:

Layout v2 (the default for new stores)::

    <root>/manifest.jsonl        append-only segment manifest (CRC'd lines)
    <root>/segments/seg-NNNNNN.jsonl
                                 bounded record segments; same CRC'd line
                                 format as the v1 log, so migration is a
                                 byte-for-byte line copy
    <root>/index.sqlite          derived SQLite index (WAL) down to
                                 per-injection rows; rebuildable from the
                                 segments at any time

Layout v1 (legacy, still fully read/writable)::

    <root>/campaigns.jsonl       append-only; one CRC32-guarded record per line
    <root>/index.jsonl           incremental side index, one line per put
                                 (each line records how far into the log it
                                 covers, so a stale index re-syncs on open)
    <root>/index.json            the pre-incremental side index (read-only
                                 fallback; the first put materializes the
                                 full index.jsonl from the log before
                                 appending to it)

The record line format follows the checkpoint journal's conventions
(schema version, ``zlib.crc32`` over the canonical payload, fsync'd
appends).  Mid-file corruption is reported, never silently skipped; a
*torn tail* — the final line of the live log/segment truncated by a
crash mid-``put`` — is the one recoverable case: it was never
acknowledged, so readers ignore it and writers (both layouts) truncate
it before appending, exactly like the journal's torn-record handling.

Writers serialize through an advisory ``flock`` on ``<root>/.lock``
(where the platform provides one), and each v2 put re-syncs any segment
bytes another writer appended before trusting its own offsets, so
concurrent processes may share a store.  Readers never take the lock.

The SQLite index is **derived state**: every byte of truth lives in the
segments, and a missing, corrupt, or stale index is rebuilt (or
incrementally re-synced from the un-indexed segment tails) on open.
``repro store rebuild`` forces the full rebuild; ``repro store
migrate`` converts a v1 store in place, losslessly and id-stably.

Reports and regression diffs over stored campaigns live in
:mod:`repro.forensics.report`; cross-campaign slicing queries in
:mod:`repro.forensics.query` (CLI: ``repro report``).  See
``docs/store.md`` for the full layout and schema reference.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

try:  # advisory writer lock; POSIX-only, degrades to documented single-writer
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

import numpy as np

from repro.analysis.reporting import counts_to_dict
from repro.faultinject.campaign import CampaignResult
from repro.faultinject.journal import config_fingerprint
from repro.forensics.divergence import NONE_KEY, summarize_divergence

#: Bump when the *record* shape changes incompatibly.  Records are the
#: content-addressed unit: their schema (and therefore their ids) is
#: independent of the on-disk layout version below.
STORE_SCHEMA_VERSION = 1

#: On-disk layout generations (see module docstring).
LAYOUT_V1 = 1
LAYOUT_V2 = 2

#: Hex digits of the SHA-256 kept as the campaign id.
ID_LENGTH = 16

#: Segment roll threshold; a segment that has reached this many bytes is
#: sealed and the next put opens a fresh one.  Override per store via
#: the constructor (tests) or REPRO_STORE_SEGMENT_BYTES.
DEFAULT_SEGMENT_MAX_BYTES = 4 * 1024 * 1024

SEGMENT_BYTES_ENV = "REPRO_STORE_SEGMENT_BYTES"

#: SQLite schema generation; bumping forces a rebuild on open.
DB_SCHEMA_VERSION = 1

#: Sentinel stage for per-injection rows that carried no divergence
#: record at all (unprobed runs) — distinct from :data:`NONE_KEY`,
#: which means "probed, never diverged".
UNPROBED_KEY = "unprobed"


class StoreError(ValueError):
    """The store cannot be used (missing id, corrupt record, bad schema)."""


def _canonical_json(payload: Any) -> str:
    """The byte-stable JSON encoding ids and CRCs are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def campaign_id(record: dict) -> str:
    """Content-addressed id of one campaign record."""
    digest = hashlib.sha256(_canonical_json(record).encode("utf-8")).hexdigest()
    return digest[:ID_LENGTH]


def encode_record_line(record: dict, cid: str | None = None) -> tuple[str, str]:
    """``(cid, line)`` for one record in the shared CRC'd line format."""
    cid = cid or campaign_id(record)
    payload = _canonical_json(record)
    line = _canonical_json(
        {"id": cid, "crc32": zlib.crc32(payload.encode("utf-8")), "record": record}
    )
    return cid, line


def decode_record_line(line: str, where: str) -> tuple[str, dict]:
    """Parse and verify one record line; raises :class:`StoreError`.

    ``where`` names the file/line for error messages.  Both the CRC and
    the content address are checked, so a record can neither rot nor
    drift from its id unnoticed.
    """
    try:
        entry = json.loads(line)
    except json.JSONDecodeError as exc:
        raise StoreError(f"store record at {where} is not JSON: {exc}") from None
    record = entry.get("record")
    cid = entry.get("id")
    if not isinstance(record, dict) or not isinstance(cid, str):
        raise StoreError(f"store record at {where} is malformed")
    payload = _canonical_json(record)
    if zlib.crc32(payload.encode("utf-8")) != entry.get("crc32"):
        raise StoreError(f"store record {cid} at {where} failed its CRC check")
    if campaign_id(record) != cid:
        raise StoreError(f"store record at {where} does not hash to its id {cid}")
    return cid, record


def build_record(
    campaign: CampaignResult,
    golden_output: np.ndarray | None = None,
    label: str | None = None,
) -> dict:
    """Fold one :class:`CampaignResult` into a storable record.

    ``golden_output``, when given, lets the record include the SDC
    quality distribution (relative L2 norm and Egregiousness Degree per
    retained corrupted output — paper Fig. 12).  ``label`` is a free
    human tag; it participates in the content address, so relabelling a
    campaign stores a distinct record.
    """
    injections = []
    for result in campaign.results:
        divergence = result.divergence
        injections.append(
            [
                int(result.plan.register),
                int(result.plan.bit),
                result.outcome.value,
                result.crash_kind.value if result.crash_kind is not None else "",
                1 if (result.record.fired and result.record.in_study) else 0,
                divergence.first_divergence or "" if divergence is not None else "",
                divergence.last_stage or "" if divergence is not None else "",
                divergence.diverged_bits if divergence is not None else -1,
            ]
        )

    sdc_quality = []
    if golden_output is not None:
        from repro.quality import compare_outputs

        for index, result in enumerate(campaign.results):
            if not result.is_sdc or result.output is None:
                continue
            quality = compare_outputs(golden_output, result.output)
            rel = quality.relative_l2_norm
            sdc_quality.append(
                {
                    "index": index,
                    # round() keeps the canonical JSON (and therefore the
                    # content address) stable across float formatting.
                    "relative_l2": round(rel, 6) if np.isfinite(rel) else None,
                    "ed": quality.egregious_degree,
                }
            )

    record = {
        "schema": STORE_SCHEMA_VERSION,
        "label": label,
        "fingerprint": config_fingerprint(campaign.config),
        "counts": counts_to_dict(campaign.counts),
        "fired_counts": counts_to_dict(campaign.fired_counts()),
        "register_histogram": campaign.register_histogram.tolist(),
        "bit_histogram": campaign.bit_histogram.tolist(),
        "injections": injections,
        "divergence": summarize_divergence(campaign.results),
        "sdc_quality": sdc_quality,
    }
    # Only stratified campaigns carry a sampling block, so uniform
    # records keep exactly their previous shape — and therefore their
    # previous content-addressed ids.
    if campaign.sampling is not None:
        record["sampling"] = campaign.sampling.to_dict()
    return record


# ---------------------------------------------------------------------------
# Per-injection row normalization (shared by the SQL index and the
# brute-force scan path, so both query engines see identical values)
# ---------------------------------------------------------------------------

#: Bits per octet column; 64 bits fold into 8 octets, 32 registers into
#: 4 register classes (matching the report heatmaps and the stratified
#: sampler's default axes).
OCTET = 8
REGISTERS_PER_CLASS = 8


def injection_view(row: list) -> dict:
    """Normalized view of one stored ``injections`` row.

    ``first_divergence`` / ``last_stage`` are ``UNPROBED_KEY`` for rows
    without a divergence record, :data:`NONE_KEY` for probed rows that
    never diverged / completed, and the stage name otherwise — one
    vocabulary for both the SQL index and the brute-force scanner.
    """
    register, bit = int(row[0]), int(row[1])
    probed = int(row[7]) >= 0
    return {
        "register": register,
        "bit": bit,
        "register_class": register // REGISTERS_PER_CLASS,
        "bit_octet": bit // OCTET,
        "outcome": row[2],
        "crash_kind": row[3] or "",
        "fired": int(row[4]),
        "first_divergence": (row[5] or NONE_KEY) if probed else UNPROBED_KEY,
        "last_stage": (row[6] or NONE_KEY) if probed else UNPROBED_KEY,
        "diverged_bits": int(row[7]),
        "probed": 1 if probed else 0,
    }


def record_summary(record: dict) -> dict:
    """Per-campaign summary row (index payload, ``report list``)."""
    fingerprint = record["fingerprint"]
    counts = record["counts"]
    return {
        "label": record.get("label"),
        "kind": fingerprint["kind"],
        "n_injections": fingerprint["n_injections"],
        "seed": fingerprint["seed"],
        "probe": bool(fingerprint.get("probe")),
        "sampling": "stratified" if record.get("sampling") else "uniform",
        "total": counts["total"],
        "masked": counts["masked"],
        "sdc": counts["sdc"],
        "crash_segv": counts["crash_segv"],
        "crash_abort": counts["crash_abort"],
        "hang": counts["hang"],
    }


# ---------------------------------------------------------------------------
# Shared line-file helpers
# ---------------------------------------------------------------------------


def _fsync_append(path: Path, line: str) -> tuple[int, int]:
    """Append ``line`` + newline, fsync'd; returns ``(offset, length)``."""
    data = (line + "\n").encode("utf-8")
    with open(path, "ab") as handle:
        offset = handle.tell()
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    return offset, len(data)


def _scan_lines(
    path: Path, start: int = 0
) -> Iterator[tuple[int, int, str]]:
    """Yield ``(offset, length, text)`` per complete line from ``start``.

    A trailing fragment without a newline is *not* yielded — that is the
    torn-tail case the caller decides how to handle (its offset is where
    the last complete line ended).
    """
    with open(path, "rb") as handle:
        handle.seek(start)
        offset = start
        for raw in handle:
            if not raw.endswith(b"\n"):
                return  # torn tail: never acknowledged, never yielded
            yield offset, len(raw), raw[:-1].decode("utf-8")
            offset += len(raw)


def _complete_prefix_end(path: Path, start: int = 0) -> int:
    """Byte offset just past the last newline-terminated line."""
    end = start
    for offset, length, _text in _scan_lines(path, start):
        end = offset + length
    return end


def _truncate_torn_tail(path: Path) -> None:
    """Drop a crash-torn final line so the next append starts clean.

    O(1) when the file is healthy (last byte is a newline); only a torn
    tail pays the rescan to find the last complete line.
    """
    if not path.exists():
        return
    size = path.stat().st_size
    if size == 0:
        return
    with open(path, "rb") as handle:
        handle.seek(size - 1)
        if handle.read(1) == b"\n":
            return
    end = _complete_prefix_end(path)
    with open(path, "r+b") as handle:
        handle.truncate(end)


@contextmanager
def _store_write_lock(root: Path) -> Iterator[None]:
    """Advisory exclusive lock serializing writers on one store root.

    Protects the append + index sequence against concurrent processes
    (two unserialized O_APPEND writers would both record the same
    ``tell()`` offset while the kernel interleaves their writes).
    Readers never take the lock; on platforms without ``fcntl`` the
    store falls back to the documented single-writer assumption.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    root.mkdir(parents=True, exist_ok=True)
    with open(root / ".lock", "ab") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


# ---------------------------------------------------------------------------
# The store facade
# ---------------------------------------------------------------------------


@dataclass
class MigrationReport:
    """What ``migrate_store`` did, for logs and assertions."""

    root: Path
    ids: list[str] = field(default_factory=list)
    segments: int = 0
    backups: list[str] = field(default_factory=list)

    @property
    def records(self) -> int:
        return len(self.ids)


class CampaignStore:
    """One store directory of campaign records (layout autodetected).

    ``layout`` pins a specific on-disk generation (tests, migration);
    the default detects an existing store and creates new stores as v2.
    """

    def __init__(
        self,
        root: Path | str,
        layout: int | None = None,
        segment_max_bytes: int | None = None,
    ) -> None:
        self.root = Path(root)
        # v1 files
        self.records_path = self.root / "campaigns.jsonl"
        self.index_path = self.root / "index.json"
        self.index_jsonl_path = self.root / "index.jsonl"
        # v2 files
        self.manifest_path = self.root / "manifest.jsonl"
        self.segments_dir = self.root / "segments"
        self.db_path = self.root / "index.sqlite"
        if layout not in (None, LAYOUT_V1, LAYOUT_V2):
            raise StoreError(f"unknown store layout {layout!r}")
        self._layout = layout
        if segment_max_bytes is None:
            raw = os.environ.get(SEGMENT_BYTES_ENV)
            segment_max_bytes = int(raw) if raw else DEFAULT_SEGMENT_MAX_BYTES
        if segment_max_bytes < 1:
            raise StoreError(f"segment_max_bytes must be >= 1, got {segment_max_bytes}")
        self.segment_max_bytes = segment_max_bytes
        self._conn: sqlite3.Connection | None = None
        self._repaired = False
        self._v1_index: dict | None = None

    # -- layout detection --------------------------------------------------

    @property
    def layout(self) -> int:
        """The store's on-disk layout generation (new stores: v2)."""
        if self._layout is not None:
            return self._layout
        if self.manifest_path.exists():
            return LAYOUT_V2
        if self.records_path.exists():
            return LAYOUT_V1
        return LAYOUT_V2

    @property
    def indexed(self) -> bool:
        """Whether slicing queries run against the SQLite index."""
        return self.layout == LAYOUT_V2

    def close(self) -> None:
        """Release the SQLite handle (stores are also usable ad hoc)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- writing ----------------------------------------------------------

    def put(self, record: dict) -> str:
        """Store one record; returns its campaign id (idempotent)."""
        if record.get("schema") != STORE_SCHEMA_VERSION:
            raise StoreError(
                f"record schema {record.get('schema')!r} is not supported "
                f"(expected {STORE_SCHEMA_VERSION})"
            )
        with _store_write_lock(self.root):
            if self.layout == LAYOUT_V1:
                return self._v1_put(record)
            return self._v2_put(record)

    def put_campaign(
        self,
        campaign: CampaignResult,
        golden_output: np.ndarray | None = None,
        label: str | None = None,
    ) -> str:
        """Build and store a record in one step; returns the id."""
        return self.put(build_record(campaign, golden_output=golden_output, label=label))

    # -- reading ----------------------------------------------------------

    def ids(self) -> list[str]:
        """Stored campaign ids in insertion order."""
        if self.layout == LAYOUT_V1:
            return list(self._v1_load_index()["order"])
        conn = self._db()
        return [row[0] for row in conn.execute("SELECT cid FROM campaigns ORDER BY seq")]

    def summaries(self) -> dict[str, dict]:
        """Per-id summary rows from the index (insertion order).

        Rows carry the full outcome-count breakdown (plus sampling
        mode) so listing consumers — ``report list``, the trend
        dashboard's uniform rows — never need the full record.  Legacy
        ``index.json`` rows predate some fields; they surface as-is
        until the store is rebuilt or migrated.
        """
        if self.layout == LAYOUT_V1:
            index = self._v1_load_index()
            return {cid: index["campaigns"][cid] for cid in index["order"]}
        conn = self._db()
        rows = conn.execute(
            "SELECT cid, label, kind, n_injections, seed, probe, sampling, "
            "total, masked, sdc, crash_segv, crash_abort, hang "
            "FROM campaigns ORDER BY seq"
        )
        return {
            row[0]: {
                "label": row[1],
                "kind": row[2],
                "n_injections": row[3],
                "seed": row[4],
                "probe": bool(row[5]),
                "sampling": row[6],
                "total": row[7],
                "masked": row[8],
                "sdc": row[9],
                "crash_segv": row[10],
                "crash_abort": row[11],
                "hang": row[12],
            }
            for row in rows
        }

    def get(self, cid: str) -> dict:
        """Load one record by id, verifying its CRC and content address.

        v2 stores resolve the id through the SQLite index to a single
        ``(segment, offset, length)`` seek — O(log n), not a scan.
        """
        if self.layout == LAYOUT_V1:
            return self._v1_get(cid)
        conn = self._db()
        row = conn.execute(
            "SELECT segment, offset, length FROM campaigns WHERE cid = ?", (cid,)
        ).fetchone()
        if row is None:
            raise StoreError(
                f"campaign {cid!r} is not in store {self.root} "
                f"(known: {', '.join(self.ids()) or 'none'})"
            )
        segment, offset, length = row
        path = self.segments_dir / segment
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                data = handle.read(length)
        except OSError as exc:
            raise StoreError(f"store segment {path} is unreadable: {exc}") from None
        if not data.endswith(b"\n"):
            raise StoreError(
                f"store segment {segment} is shorter than its index entry for {cid}"
            )
        found, record = decode_record_line(
            data[:-1].decode("utf-8"), f"{segment}@{offset}"
        )
        if found != cid:
            raise StoreError(
                f"store index for {cid} points at record {found} "
                f"({segment}@{offset}); run `repro store rebuild {self.root}`"
            )
        return record

    def records(self) -> Iterator[tuple[str, dict]]:
        """All ``(cid, record)`` pairs in insertion order (verified).

        This is the brute-force path: it decodes every segment line and
        is what the indexed query engine is property-tested against.
        """
        for _segment, _offset, _length, cid, record in self._iter_records():
            yield cid, record

    def location(self, cid: str) -> tuple[str, int, int] | None:
        """``(segment, offset, length)`` for one id (v2 stores only)."""
        if self.layout != LAYOUT_V2:
            return None
        row = self._db().execute(
            "SELECT segment, offset, length FROM campaigns WHERE cid = ?", (cid,)
        ).fetchone()
        return (row[0], row[1], row[2]) if row is not None else None

    def _iter_records(self) -> Iterator[tuple[str, int, int, str, dict]]:
        if self.layout == LAYOUT_V1:
            if not self.records_path.exists():
                return
            for offset, length, text in _scan_lines(self.records_path):
                cid, record = decode_record_line(
                    text, f"{self.records_path}:{offset}"
                )
                yield "campaigns.jsonl", offset, length, cid, record
            return
        for segment in self._manifest_segments():
            path = self.segments_dir / segment
            if not path.exists():
                continue  # crash between manifest append and first write
            for offset, length, text in _scan_lines(path):
                cid, record = decode_record_line(text, f"{segment}:{offset}")
                yield segment, offset, length, cid, record

    # ------------------------------------------------------------------
    # v1 backend (legacy layout, kept fully writable)
    # ------------------------------------------------------------------

    def _v1_put(self, record: dict) -> str:
        index = self._v1_load_index()
        cid = campaign_id(record)
        if cid in index["campaigns"]:
            return cid
        self.root.mkdir(parents=True, exist_ok=True)
        if self.records_path.exists() and not self.index_jsonl_path.exists():
            # Legacy store read through index.json: materialize the full
            # incremental side index from the log before the first
            # append — a lone appended line would otherwise shadow
            # index.json (and drop every prior campaign) on reopen.
            index = self._v1_rebuild_index()
            self._v1_index = index
            if cid in index["campaigns"]:
                return cid
        # A crash-torn final line was never acknowledged; drop it so the
        # new record cannot fuse with the fragment (journal rule).
        _truncate_torn_tail(self.records_path)
        _truncate_torn_tail(self.index_jsonl_path)
        _cid, line = encode_record_line(record, cid)
        offset, length = _fsync_append(self.records_path, line)
        summary = record_summary(record)
        # O(1) ingest: one appended side-index line per record — the
        # monolithic rewrite-the-world index.json is never written again
        # (only read, as a legacy fallback).  ``end`` records how far
        # into the log this entry covers, so a stale index (crash
        # between the two appends) re-syncs from that offset on open.
        _fsync_append(
            self.index_jsonl_path,
            _canonical_json({"end": offset + length, "id": cid, "summary": summary}),
        )
        index["order"].append(cid)
        index["campaigns"][cid] = summary
        return cid

    def _v1_get(self, cid: str) -> dict:
        for _seg, offset, _length, found, record in self._iter_records():
            if found == cid:
                return record
        raise StoreError(
            f"campaign {cid!r} is not in store {self.root} "
            f"(known: {', '.join(self.ids()) or 'none'})"
        )

    def _v1_load_index(self) -> dict:
        """The v1 side index, self-healing: rebuilt when missing/corrupt,
        re-synced against the log tail when stale (a crash between the
        log append and the index append loses only the index line, and
        that line is re-derived here)."""
        if self._v1_index is not None:
            return self._v1_index
        loaded = self._v1_read_side_index()
        if loaded is None:
            index = self._v1_rebuild_index()
        else:
            index, covered = loaded
            index = self._v1_reconcile_index(index, covered)
        self._v1_index = index
        return index

    def _v1_read_side_index(self) -> tuple[dict, int | None] | None:
        """``(index, covered_log_bytes)`` from the side index, or None.

        ``covered_log_bytes`` is how far into ``campaigns.jsonl`` the
        index claims to reach (None when unknown — a legacy index with
        no coverage offsets, or the read-only ``index.json`` fallback).
        """
        if self.index_jsonl_path.exists():
            order: list[str] = []
            campaigns: dict[str, dict] = {}
            covered: int | None = None
            try:
                for _offset, _length, text in _scan_lines(self.index_jsonl_path):
                    entry = json.loads(text)
                    cid, summary = entry["id"], entry["summary"]
                    end = entry.get("end")
                    if isinstance(end, int):
                        covered = end if covered is None else max(covered, end)
                    if cid not in campaigns:
                        order.append(cid)
                        campaigns[cid] = summary
            except (json.JSONDecodeError, KeyError, TypeError):
                return None  # corrupt side index -> rebuild from the log
            index = {
                "schema": STORE_SCHEMA_VERSION,
                "order": order,
                "campaigns": campaigns,
            }
            return index, covered
        if self.index_path.exists():
            try:
                index = json.loads(self.index_path.read_text())
            except json.JSONDecodeError:
                return None
            if index.get("schema") != STORE_SCHEMA_VERSION:
                raise StoreError(
                    f"store index {self.index_path} schema {index.get('schema')!r} "
                    f"is not supported (expected {STORE_SCHEMA_VERSION})"
                )
            if not isinstance(index.get("order"), list) or not isinstance(
                index.get("campaigns"), dict
            ):
                return None
            return index, None
        if not self.records_path.exists():
            return {"schema": STORE_SCHEMA_VERSION, "order": [], "campaigns": {}}, 0
        return None

    def _v1_reconcile_index(self, index: dict, covered: int | None) -> dict:
        """Re-index log records the side index's coverage stops short of.

        Only applies to ``index.jsonl`` stores — the read-only
        ``index.json`` fallback surfaces as-is and heals on first put.
        Healthy stores pay one ``stat`` here; only a stale index pays
        the tail scan.
        """
        if not self.index_jsonl_path.exists() or not self.records_path.exists():
            return index
        if covered is None:
            # Side index predates coverage offsets: one full rebuild
            # upgrades it rather than rescanning the log every open.
            return self._v1_rebuild_index()
        if self.records_path.stat().st_size <= covered:
            return index
        _truncate_torn_tail(self.index_jsonl_path)
        for offset, length, text in _scan_lines(self.records_path, covered):
            cid, record = decode_record_line(text, f"{self.records_path}:{offset}")
            if cid in index["campaigns"]:
                continue
            summary = record_summary(record)
            _fsync_append(
                self.index_jsonl_path,
                _canonical_json(
                    {"end": offset + length, "id": cid, "summary": summary}
                ),
            )
            index["order"].append(cid)
            index["campaigns"][cid] = summary
        return index

    def _v1_rebuild_index(self) -> dict:
        """Re-derive the side index from the log and persist it."""
        order: list[str] = []
        campaigns: dict[str, dict] = {}
        lines: list[str] = []
        for _seg, offset, length, cid, record in self._iter_records():
            if cid not in campaigns:
                order.append(cid)
                campaigns[cid] = record_summary(record)
                lines.append(
                    _canonical_json(
                        {"end": offset + length, "id": cid, "summary": campaigns[cid]}
                    )
                )
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.index_jsonl_path.with_suffix(".jsonl.tmp")
        tmp.write_text("".join(line + "\n" for line in lines))
        os.replace(tmp, self.index_jsonl_path)
        return {"schema": STORE_SCHEMA_VERSION, "order": order, "campaigns": campaigns}

    # ------------------------------------------------------------------
    # v2 backend (segments + manifest + SQLite)
    # ------------------------------------------------------------------

    def _manifest_segments(self) -> list[str]:
        """Segment names in manifest (append) order; torn tail ignored."""
        if not self.manifest_path.exists():
            return []
        segments: list[str] = []
        for offset, _length, text in _scan_lines(self.manifest_path):
            try:
                entry = json.loads(text)
            except json.JSONDecodeError as exc:
                raise StoreError(
                    f"store manifest {self.manifest_path} offset {offset} "
                    f"is not JSON: {exc}"
                ) from None
            payload = entry.get("entry")
            if not isinstance(payload, dict) or zlib.crc32(
                _canonical_json(payload).encode("utf-8")
            ) != entry.get("crc32"):
                raise StoreError(
                    f"store manifest {self.manifest_path} offset {offset} "
                    f"failed its CRC check"
                )
            if payload.get("type") == "header":
                if payload.get("layout") != LAYOUT_V2:
                    raise StoreError(
                        f"store manifest layout {payload.get('layout')!r} is not "
                        f"supported (expected {LAYOUT_V2})"
                    )
            elif payload.get("type") == "segment":
                segments.append(payload["name"])
        return segments

    def _append_manifest(self, payload: dict) -> None:
        line = _canonical_json(
            {"crc32": zlib.crc32(_canonical_json(payload).encode("utf-8")), "entry": payload}
        )
        _fsync_append(self.manifest_path, line)

    def _segment_name(self, index: int) -> str:
        return f"seg-{index:06d}.jsonl"

    def _live_segment(self, conn: sqlite3.Connection) -> str:
        """The segment the next put appends to, rolling when full.

        The manifest line is fsync'd *before* the segment file is
        created, so no record can ever live in an unreferenced segment.
        """
        segments = self._manifest_segments()
        if not segments:
            self.segments_dir.mkdir(parents=True, exist_ok=True)
            self._append_manifest({"type": "header", "layout": LAYOUT_V2})
            name = self._segment_name(1)
            self._append_manifest({"type": "segment", "name": name, "seq": 1})
            conn.execute(
                "INSERT OR IGNORE INTO segments(name, seq, indexed_bytes) VALUES (?, ?, 0)",
                (name, 1),
            )
            return name
        live = segments[-1]
        path = self.segments_dir / live
        if path.exists() and path.stat().st_size >= self.segment_max_bytes:
            name = self._segment_name(len(segments) + 1)
            self._append_manifest(
                {"type": "segment", "name": name, "seq": len(segments) + 1}
            )
            conn.execute(
                "INSERT OR IGNORE INTO segments(name, seq, indexed_bytes) VALUES (?, ?, 0)",
                (name, len(segments) + 1),
            )
            return name
        return live

    def _v2_put(self, record: dict) -> str:
        cid = campaign_id(record)
        self.root.mkdir(parents=True, exist_ok=True)
        conn = self._db(repair=True)
        exists = conn.execute(
            "SELECT 1 FROM campaigns WHERE cid = ?", (cid,)
        ).fetchone()
        if exists is not None:
            return cid
        segment = self._live_segment(conn)
        path = self.segments_dir / segment
        # Another process may have appended to the live segment since our
        # open-time sync (or crashed mid-put there): index that tail
        # before trusting our own offsets, or the indexed_bytes update
        # below would mark the foreign record as covered without rows.
        done = conn.execute(
            "SELECT indexed_bytes FROM segments WHERE name = ?", (segment,)
        ).fetchone()[0]
        size = path.stat().st_size if path.exists() else 0
        if size > done:
            end = self._ingest_segment_tail(conn, segment, start=done)
            if end < size:
                with open(path, "r+b") as handle:
                    handle.truncate(end)
            if (
                conn.execute(
                    "SELECT 1 FROM campaigns WHERE cid = ?", (cid,)
                ).fetchone()
                is not None
            ):
                conn.commit()  # the tail held this very record: keep its rows
                return cid
        _cid, line = encode_record_line(record, cid)
        offset, length = _fsync_append(path, line)
        self._index_record(conn, segment, offset, length, cid, record)
        conn.execute(
            "UPDATE segments SET indexed_bytes = ? WHERE name = ?",
            (offset + length, segment),
        )
        conn.commit()
        return cid

    def _db(self, repair: bool = False) -> sqlite3.Connection:
        """The SQLite index, opened/validated/synced on first use.

        Derived state: missing or corrupt databases are rebuilt from the
        segments; stale databases (segment bytes beyond what is indexed
        — e.g. the index write raced a crash) are incrementally re-synced
        by scanning only the un-indexed tails.  ``repair=True`` lets the
        sync truncate torn segment tails (writer paths); read paths
        leave the file untouched and simply ignore the tail.
        """
        if self._conn is not None:
            if repair and not self._repaired:
                # First opened by a read path: writers must still clear
                # any torn segment tail before they append after it.
                self._sync_index(self._conn, repair=True)
                self._repaired = True
            return self._conn
        self.root.mkdir(parents=True, exist_ok=True)
        conn = self._open_db()
        if conn is None:
            try:
                self.db_path.unlink()
            except FileNotFoundError:
                pass
            conn = self._open_db()
            assert conn is not None  # fresh file: schema just created
        try:
            self._sync_index(conn, repair=repair)
        except StoreError:
            conn.close()
            raise
        self._repaired = repair
        self._conn = conn
        return conn

    def _open_db(self) -> sqlite3.Connection | None:
        """Open + validate (or initialize) the index; None when corrupt."""
        try:
            conn = sqlite3.connect(self.db_path)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            version = conn.execute("PRAGMA user_version").fetchone()[0]
        except sqlite3.DatabaseError:
            return None
        if version == 0:
            # Either a fresh database or one from before versioning —
            # initialize idempotently, then stamp.
            try:
                tables = {
                    row[0]
                    for row in conn.execute(
                        "SELECT name FROM sqlite_master WHERE type='table'"
                    )
                }
            except sqlite3.DatabaseError:
                conn.close()
                return None
            if tables:
                conn.close()
                return None  # foreign/unversioned database: rebuild
            conn.executescript(_DB_SCHEMA)
            conn.execute(f"PRAGMA user_version = {DB_SCHEMA_VERSION}")
            conn.commit()
            return conn
        if version != DB_SCHEMA_VERSION:
            conn.close()
            return None
        try:
            conn.execute("SELECT seq FROM campaigns LIMIT 1").fetchone()
            conn.execute("SELECT name FROM segments LIMIT 1").fetchone()
        except sqlite3.DatabaseError:
            conn.close()
            return None
        return conn

    def _sync_index(self, conn: sqlite3.Connection, repair: bool) -> None:
        """Bring the index up to date with the segment files."""
        manifest = self._manifest_segments()
        indexed = {
            name: bytes_done
            for name, bytes_done in conn.execute(
                "SELECT name, indexed_bytes FROM segments"
            )
        }
        stale = set(indexed) - set(manifest)
        if stale:
            raise StoreError(
                f"store index references unknown segment(s) {sorted(stale)}; "
                f"run `repro store rebuild {self.root}`"
            )
        dirty = False
        for seq, name in enumerate(manifest, start=1):
            path = self.segments_dir / name
            size = path.stat().st_size if path.exists() else 0
            done = indexed.get(name, 0)
            if name not in indexed:
                conn.execute(
                    "INSERT INTO segments(name, seq, indexed_bytes) VALUES (?, ?, 0)",
                    (name, seq),
                )
                dirty = True
            if size < done:
                raise StoreError(
                    f"store segment {name} is shorter ({size}B) than its index "
                    f"claims ({done}B); run `repro store rebuild {self.root}`"
                )
            if size > done:
                end = self._ingest_segment_tail(conn, name, start=done)
                if repair and end < size:
                    # Torn tail from a crashed put: the record was never
                    # acknowledged, so drop it before the next append —
                    # the same recovery the checkpoint journal applies.
                    with open(path, "r+b") as handle:
                        handle.truncate(end)
                dirty = True
        if dirty:
            conn.commit()

    def _ingest_segment_tail(
        self, conn: sqlite3.Connection, segment: str, start: int
    ) -> int:
        """Index every complete record line from ``start``; returns end."""
        path = self.segments_dir / segment
        end = start
        for offset, length, text in _scan_lines(path, start):
            cid, record = decode_record_line(text, f"{segment}:{offset}")
            if (
                conn.execute(
                    "SELECT 1 FROM campaigns WHERE cid = ?", (cid,)
                ).fetchone()
                is None
            ):
                self._index_record(conn, segment, offset, length, cid, record)
            end = offset + length
        conn.execute(
            "UPDATE segments SET indexed_bytes = ? WHERE name = ?", (end, segment)
        )
        return end

    def _index_record(
        self,
        conn: sqlite3.Connection,
        segment: str,
        offset: int,
        length: int,
        cid: str,
        record: dict,
    ) -> None:
        """One batched transaction's worth of index rows for a record."""
        summary = record_summary(record)
        cursor = conn.execute(
            "INSERT INTO campaigns(cid, label, kind, n_injections, seed, probe, "
            "sampling, total, masked, sdc, crash_segv, crash_abort, hang, "
            "segment, offset, length, ingested_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                cid,
                summary["label"],
                summary["kind"],
                summary["n_injections"],
                summary["seed"],
                1 if summary["probe"] else 0,
                summary["sampling"],
                summary["total"],
                summary["masked"],
                summary["sdc"],
                summary["crash_segv"],
                summary["crash_abort"],
                summary["hang"],
                segment,
                offset,
                length,
                time.time(),
            ),
        )
        seq = cursor.lastrowid
        conn.executemany(
            "INSERT INTO injections(campaign_seq, item, register, bit, "
            "register_class, bit_octet, outcome, crash_kind, fired, "
            "first_divergence, last_stage, diverged_bits, probed) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                (
                    seq,
                    item,
                    view["register"],
                    view["bit"],
                    view["register_class"],
                    view["bit_octet"],
                    view["outcome"],
                    view["crash_kind"],
                    view["fired"],
                    view["first_divergence"],
                    view["last_stage"],
                    view["diverged_bits"],
                    view["probed"],
                )
                for item, view in enumerate(
                    injection_view(row) for row in record["injections"]
                )
            ),
        )


_DB_SCHEMA = """
CREATE TABLE segments(
    name TEXT PRIMARY KEY,
    seq INTEGER NOT NULL,
    indexed_bytes INTEGER NOT NULL
);
CREATE TABLE campaigns(
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    cid TEXT NOT NULL UNIQUE,
    label TEXT,
    kind TEXT NOT NULL,
    n_injections INTEGER NOT NULL,
    seed INTEGER NOT NULL,
    probe INTEGER NOT NULL,
    sampling TEXT NOT NULL,
    total INTEGER NOT NULL,
    masked INTEGER NOT NULL,
    sdc INTEGER NOT NULL,
    crash_segv INTEGER NOT NULL,
    crash_abort INTEGER NOT NULL,
    hang INTEGER NOT NULL,
    segment TEXT NOT NULL,
    offset INTEGER NOT NULL,
    length INTEGER NOT NULL,
    ingested_at REAL
);
CREATE TABLE injections(
    campaign_seq INTEGER NOT NULL REFERENCES campaigns(seq),
    item INTEGER NOT NULL,
    register INTEGER NOT NULL,
    bit INTEGER NOT NULL,
    register_class INTEGER NOT NULL,
    bit_octet INTEGER NOT NULL,
    outcome TEXT NOT NULL,
    crash_kind TEXT NOT NULL,
    fired INTEGER NOT NULL,
    first_divergence TEXT NOT NULL,
    last_stage TEXT NOT NULL,
    diverged_bits INTEGER NOT NULL,
    probed INTEGER NOT NULL,
    PRIMARY KEY(campaign_seq, item)
) WITHOUT ROWID;
CREATE INDEX idx_inj_outcome ON injections(outcome, register_class, bit_octet);
CREATE INDEX idx_inj_cell ON injections(register_class, bit_octet);
CREATE INDEX idx_inj_stage ON injections(first_divergence);
CREATE INDEX idx_campaign_label ON campaigns(label);
"""


# ---------------------------------------------------------------------------
# Migration and rebuild
# ---------------------------------------------------------------------------


def migrate_store(
    root: Path | str, segment_max_bytes: int | None = None
) -> MigrationReport:
    """Convert a v1 store to the v2 layout in place — lossless, id-stable.

    Record lines are copied **byte-for-byte** from ``campaigns.jsonl``
    into the new segments (after CRC + content-address verification), so
    every record round-trips identically and keeps its sha256 id.  The
    v1 files are kept beside the new layout as ``*.v1`` backups; the
    manifest is written last, so a crash mid-migration leaves a store
    that still reads as v1.
    """
    store = CampaignStore(root, segment_max_bytes=segment_max_bytes)
    report = MigrationReport(root=store.root)
    if store.layout == LAYOUT_V2 and store.manifest_path.exists():
        raise StoreError(f"store {store.root} already uses the v2 layout")
    if not store.records_path.exists():
        raise StoreError(f"store {store.root} has no campaigns.jsonl to migrate")

    # Pass 1: verify every line and plan the segment split.  Duplicate
    # cid lines (a pre-dedupe-fix log could hold the same record twice;
    # identical cid means identical bytes, so nothing is lost) are
    # skipped, matching the side index's first-wins semantics.
    lines: list[tuple[str, str]] = []  # (cid, raw line text)
    seen: set[str] = set()
    for offset, _length, text in _scan_lines(store.records_path):
        cid, _record = decode_record_line(text, f"{store.records_path}:{offset}")
        if cid in seen:
            continue
        seen.add(cid)
        lines.append((cid, text))

    # Pass 2: write segments (verbatim lines), then the SQLite index,
    # then the manifest — detection flips to v2 only once everything is
    # in place.
    store.segments_dir.mkdir(parents=True, exist_ok=True)
    segments: list[str] = []
    current: list[str] = []
    current_bytes = 0
    limit = store.segment_max_bytes

    def flush() -> None:
        nonlocal current, current_bytes
        if not current:
            return
        name = f"seg-{len(segments) + 1:06d}.jsonl"
        path = store.segments_dir / name
        with open(path, "wb") as handle:
            handle.write("".join(line + "\n" for line in current).encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        segments.append(name)
        current = []
        current_bytes = 0

    for cid, text in lines:
        size = len(text.encode("utf-8")) + 1
        if current and current_bytes + size > limit:
            flush()
        current.append(text)
        current_bytes += size
        report.ids.append(cid)
    flush()
    if not segments:  # empty store still gets one (empty) live segment
        name = "seg-000001.jsonl"
        (store.segments_dir / name).touch()
        segments.append(name)
    report.segments = len(segments)

    # Fresh index over the new segments.
    try:
        store.db_path.unlink()
    except FileNotFoundError:
        pass
    manifest_lines = []
    for payload in (
        {"type": "header", "layout": LAYOUT_V2},
        *(
            {"type": "segment", "name": name, "seq": seq}
            for seq, name in enumerate(segments, start=1)
        ),
    ):
        manifest_lines.append(
            _canonical_json(
                {
                    "crc32": zlib.crc32(_canonical_json(payload).encode("utf-8")),
                    "entry": payload,
                }
            )
        )
    tmp = store.manifest_path.with_suffix(".jsonl.tmp")
    with open(tmp, "wb") as handle:
        handle.write("".join(line + "\n" for line in manifest_lines).encode("utf-8"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, store.manifest_path)

    # Build the index (and verify the ids survived) through the normal
    # open-time sync path — *before* retiring the v1 files, so a failed
    # verification leaves the original log untouched on disk.
    migrated = CampaignStore(root, segment_max_bytes=segment_max_bytes)
    with migrated:
        migrated._db(repair=True)
        new_ids = migrated.ids()
    if new_ids != report.ids:
        raise StoreError(
            f"migration of {store.root} changed the id sequence "
            f"({len(report.ids)} -> {len(new_ids)} records); the v1 "
            f"files were left in place"
        )

    # Retire the v1 files so detection is unambiguous.
    for old in (store.records_path, store.index_path, store.index_jsonl_path):
        if old.exists():
            backup = old.with_name(old.name + ".v1")
            os.replace(old, backup)
            report.backups.append(backup.name)
    return report


def rebuild_store(root: Path | str) -> dict:
    """Rebuild the derived side index from the raw record files.

    v1 stores get a fresh ``index.jsonl``; v2 stores get a fresh
    ``index.sqlite`` (torn segment tails are truncated).  Returns
    ``{layout, records}``.
    """
    store = CampaignStore(root)
    if store.layout == LAYOUT_V1:
        index = store._v1_rebuild_index()
        store._v1_index = index
        return {"layout": LAYOUT_V1, "records": len(index["order"])}
    store.close()
    try:
        store.db_path.unlink()
    except FileNotFoundError:
        pass
    for suffix in ("-wal", "-shm"):
        try:
            Path(str(store.db_path) + suffix).unlink()
        except FileNotFoundError:
            pass
    with CampaignStore(root, segment_max_bytes=store.segment_max_bytes) as fresh:
        fresh._db(repair=True)
        count = len(fresh.ids())
    return {"layout": LAYOUT_V2, "records": count}
