"""Deterministic campaign reports and cross-campaign regression diffs.

One stored campaign record (see :mod:`repro.forensics.store`) renders to
a terminal, markdown, or HTML report built from the same intermediate
section structure, so every format carries identical numbers and the
output is byte-deterministic for a given record: sections are emitted in
a fixed order, tables in fixed key order, and floats through fixed-width
formats.

``render_diff`` compares two records with a pooled two-proportion
z-test per outcome rate (and per first-divergence stage rate when both
campaigns were probed), flagging shifts with ``|z|`` above the 95%
threshold — the regression gate behind ``repro report diff``.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis.reporting import markdown_table
from repro.faultinject.outcomes import wilson_interval
from repro.forensics.divergence import NONE_KEY
from repro.forensics.probes import STAGES

#: Outcome keys in report order, mapped to the counts-dict field(s).
OUTCOME_FIELDS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("mask", ("masked",)),
    ("sdc", ("sdc",)),
    ("crash", ("crash_segv", "crash_abort")),
    ("hang", ("hang",)),
)

#: |z| above this flags a statistically significant rate shift (95%).
Z_THRESHOLD = 1.96

#: Bits per heatmap column: 64 bits fold into 8 octet columns.
OCTET = 8

REPORT_FORMATS = ("terminal", "markdown", "html")


@dataclass
class Section:
    """One report section: a title, a table, optional prose notes."""

    title: str
    headers: list[str] = field(default_factory=list)
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)


def _outcome_count(counts: dict, fields: tuple[str, ...]) -> int:
    return sum(int(counts[name]) for name in fields)


def _fmt_rate(value: float) -> str:
    return f"{value:.4f}"


# ---------------------------------------------------------------------------
# Section builders
# ---------------------------------------------------------------------------


def _overview_section(record: dict) -> Section:
    fingerprint = record["fingerprint"]
    section = Section("Campaign", headers=["field", "value"])
    section.rows = [
        ["label", record.get("label") or "-"],
        ["kind", fingerprint["kind"]],
        ["injections", fingerprint["n_injections"]],
        ["seed", fingerprint["seed"]],
        ["site filter", fingerprint.get("site_filter") or "-"],
        ["probed", "yes" if fingerprint.get("probe") else "no"],
        ["classified", record["counts"]["total"]],
        ["fired in study", record["fired_counts"]["total"]],
    ]
    return section


def _rates_section(record: dict) -> Section:
    counts = record["counts"]
    total = int(counts["total"])
    section = Section(
        "Outcome rates (Wilson 95% CI)",
        headers=["outcome", "count", "rate", "ci_low", "ci_high"],
    )
    for outcome, fields in OUTCOME_FIELDS:
        count = _outcome_count(counts, fields)
        rate = count / total if total else 0.0
        low, high = wilson_interval(count, total)
        section.rows.append(
            [outcome, count, _fmt_rate(rate), _fmt_rate(low), _fmt_rate(high)]
        )
    segv = int(counts["crash_segv"])
    abort = int(counts["crash_abort"])
    if segv + abort:
        section.notes.append(
            f"crash split: {segv} segv / {abort} abort "
            f"({segv / (segv + abort):.1%} segv)"
        )
    return section


#: Per-cell rows shown in the stratified CI table before capping to the
#: widest-interval cells (full grids can run to hundreds of cells).
MAX_CELL_ROWS = 24


def _sampling_sections(record: dict) -> list[Section]:
    """Stratified-campaign sections: estimator table + per-cell CIs.

    Only stratified records carry a ``sampling`` block; uniform reports
    are unchanged.
    """
    sampling = record.get("sampling")
    if not sampling:
        return []
    grid = sampling["stratification"]
    overview = Section("Stratified sampling", headers=["field", "value"])
    overview.rows = [
        [
            "strata grid",
            f"{grid['register_classes']} reg x {grid['bit_octets']} bit x "
            f"{len(grid['cycle_edges']) - 1} cycle",
        ],
        ["cells", len(sampling["cells"])],
        ["cells converged", sampling["cells_converged"]],
        ["ci-width target", f"{sampling['ci_width']:g}"],
        ["rounds", sampling["rounds"]],
        ["draws", sampling["draws"]],
        ["uniform-equivalent draws", sampling["uniform_equivalent_draws"]],
        ["draws saved", sampling["draws_saved"]],
        ["budget exhausted", "yes" if sampling["budget_exhausted"] else "no"],
    ]

    rates = Section(
        "Raw vs reweighted outcome rates",
        headers=["outcome", "raw", "reweighted"],
    )
    for outcome, _fields in OUTCOME_FIELDS:
        rates.rows.append(
            [
                outcome,
                _fmt_rate(sampling["raw_rates"][outcome]),
                _fmt_rate(sampling["ht_rates"][outcome]),
            ]
        )
    rates.notes.append(
        "reweighted (Horvitz-Thompson) rates are comparable to uniform "
        "campaigns; raw rates are biased toward oversampled strata "
        "(see docs/sampling.md)"
    )

    cells = Section(
        "Per-cell Wilson-CI widths",
        headers=["cell", "registers", "bits", "cycles", "draws", "max_ci_width", "converged_round"],
    )
    rows = sorted(
        sampling["cells"], key=lambda cell: (-cell["max_ci_width"], cell["cell"])
    )
    shown = rows[:MAX_CELL_ROWS]
    for cell in shown:
        cells.rows.append(
            [
                cell["cell"],
                f"{cell['registers'][0]}-{cell['registers'][1] - 1}",
                f"{cell['bits'][0]}-{cell['bits'][1] - 1}",
                f"{cell['cycles'][0]}-{cell['cycles'][1] - 1}",
                cell["draws"],
                _fmt_rate(cell["max_ci_width"]),
                cell["converged_round"] if cell["converged_round"] is not None else "-",
            ]
        )
    if len(rows) > len(shown):
        cells.notes.append(
            f"showing the {len(shown)} widest of {len(rows)} cells"
        )
    return [overview, rates, cells]


def _heatmap_sections(record: dict) -> list[Section]:
    """Register x bit-octet count tables, one per non-masked outcome.

    Full 32x64 tables are unreadable in a terminal; folding bits into
    octet columns keeps the register-file structure visible (sign/
    exponent octets vs mantissa octets) at a glance.  All-zero registers
    are omitted, so the tables stay small for focused campaigns.
    """
    sections = []
    for outcome, _fields in OUTCOME_FIELDS:
        if outcome == "mask":
            continue
        grid = np.zeros((32, OCTET), dtype=np.int64)
        for row in record["injections"]:
            register, bit, row_outcome = int(row[0]), int(row[1]), row[2]
            if row_outcome != outcome:
                continue
            grid[register, bit // OCTET] += 1
        section = Section(
            f"Heatmap: {outcome} by register x bit octet",
            headers=["register", *[f"b{o * OCTET}-{o * OCTET + OCTET - 1}" for o in range(OCTET)]],
        )
        for register in range(32):
            if not grid[register].any():
                continue
            section.rows.append([f"r{register}", *[int(v) for v in grid[register]]])
        if not section.rows:
            section.notes.append(f"no {outcome} outcomes recorded")
        sections.append(section)
    return sections


def _divergence_sections(record: dict) -> list[Section]:
    divergence = record["divergence"]
    sections = []

    flow = Section(
        "Divergence flow: first-diverged stage x outcome",
        headers=["first_divergence", "mask", "sdc", "crash", "hang", "total"],
    )
    for stage, by_outcome in divergence["first_divergence"].items():
        counts = [int(by_outcome.get(key, 0)) for key in ("mask", "sdc", "crash", "hang")]
        flow.rows.append([stage, *counts, sum(counts)])
    flow.notes.append(
        f"probed {divergence['probed']} / unprobed {divergence['unprobed']}; "
        f"{divergence['absorbed']} divergences absorbed before the stitch"
    )
    sections.append(flow)

    reach = Section(
        "Pipeline reach and per-stage divergence",
        headers=["stage", "runs_ending_here", "runs_diverged_here"],
    )
    last_stage = divergence["last_stage"]
    stage_diverged = divergence["stage_diverged"]
    for stage in (*STAGES, NONE_KEY):
        ended = int(last_stage.get(stage, 0))
        diverged = int(stage_diverged.get(stage, 0))
        if ended == 0 and diverged == 0:
            continue
        reach.rows.append([stage, ended, diverged])
    sections.append(reach)
    return sections


def _sdc_quality_section(record: dict) -> Section | None:
    quality = record.get("sdc_quality") or []
    if not quality:
        return None
    rels = [entry["relative_l2"] for entry in quality if entry["relative_l2"] is not None]
    eds = [int(entry["ed"]) for entry in quality]
    section = Section("SDC quality", headers=["metric", "value"])
    section.rows.append(["sdc outputs scored", len(quality)])
    if rels:
        section.rows.append(["relative L2 min", _fmt_rate(min(rels))])
        section.rows.append(["relative L2 median", _fmt_rate(float(np.median(rels)))])
        section.rows.append(["relative L2 max", _fmt_rate(max(rels))])
    for degree in sorted(set(eds)):
        section.rows.append([f"egregiousness degree {degree}", eds.count(degree)])
    return section


def build_sections(record: dict) -> list[Section]:
    """The full report as format-independent sections (fixed order)."""
    sections = [_overview_section(record), _rates_section(record)]
    sections.extend(_sampling_sections(record))
    sections.extend(_heatmap_sections(record))
    sections.extend(_divergence_sections(record))
    quality = _sdc_quality_section(record)
    if quality is not None:
        sections.append(quality)
    return sections


# ---------------------------------------------------------------------------
# Renderers
# ---------------------------------------------------------------------------


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _render_terminal(title: str, sections: list[Section]) -> str:
    lines = [title, "=" * len(title)]
    for section in sections:
        lines.append("")
        lines.append(section.title)
        lines.append("-" * len(section.title))
        if section.rows:
            table = [section.headers, *[[_cell(v) for v in row] for row in section.rows]]
            widths = [
                max(len(str(row[col])) for row in table)
                for col in range(len(section.headers))
            ]
            for index, row in enumerate(table):
                lines.append(
                    "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)).rstrip()
                )
                if index == 0:
                    lines.append("  ".join("-" * width for width in widths))
        for note in section.notes:
            lines.append(f"* {note}")
    return "\n".join(lines) + "\n"


def _render_markdown(title: str, sections: list[Section]) -> str:
    lines = [f"# {title}"]
    for section in sections:
        lines.append("")
        lines.append(f"## {section.title}")
        lines.append("")
        if section.rows:
            lines.append(markdown_table(section.headers, section.rows))
        for note in section.notes:
            lines.append("")
            lines.append(f"*{note}*")
    return "\n".join(lines) + "\n"


def _render_html(title: str, sections: list[Section]) -> str:
    out = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        "<style>",
        "body{font-family:monospace;margin:2em;background:#fafafa;color:#222}",
        "table{border-collapse:collapse;margin:0.5em 0}",
        "td,th{border:1px solid #bbb;padding:2px 8px;text-align:right}",
        "th{background:#eee}td:first-child,th:first-child{text-align:left}",
        "h2{border-bottom:1px solid #ccc;padding-bottom:2px}",
        ".note{color:#555;font-style:italic}",
        "</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
    ]
    for section in sections:
        out.append(f"<h2>{html.escape(section.title)}</h2>")
        if section.rows:
            out.append("<table><tr>")
            out.extend(f"<th>{html.escape(str(h))}</th>" for h in section.headers)
            out.append("</tr>")
            for row in section.rows:
                out.append(
                    "<tr>"
                    + "".join(f"<td>{html.escape(_cell(v))}</td>" for v in row)
                    + "</tr>"
                )
            out.append("</table>")
        for note in section.notes:
            out.append(f"<p class='note'>{html.escape(note)}</p>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"


_RENDERERS = {
    "terminal": _render_terminal,
    "markdown": _render_markdown,
    "html": _render_html,
}


def render_sections(title: str, sections: list[Section], fmt: str = "terminal") -> str:
    """Render arbitrary sections through the shared renderer set.

    The public entry point for other report producers (the trend
    dashboard) so every artifact carries the same table styling and the
    same byte-determinism guarantees.
    """
    if fmt not in _RENDERERS:
        raise ValueError(f"unknown report format {fmt!r} (choose from {REPORT_FORMATS})")
    return _RENDERERS[fmt](title, sections)


def render_report(record: dict, fmt: str = "terminal", cid: str | None = None) -> str:
    """Render one stored campaign record; byte-deterministic per input."""
    title = f"Campaign report {cid}" if cid else "Campaign report"
    return render_sections(title, build_sections(record), fmt)


# ---------------------------------------------------------------------------
# Cross-campaign regression diff
# ---------------------------------------------------------------------------


def two_proportion_z(successes_a: int, total_a: int, successes_b: int, total_b: int) -> float:
    """Pooled two-proportion z statistic (0.0 when degenerate).

    Degenerate inputs — an empty side, or a pooled rate of exactly 0 or
    1 (no variance under the null) — yield ``z == 0``: with no variance
    there is no evidence of a shift to flag.
    """
    if total_a == 0 or total_b == 0:
        return 0.0
    p_a = successes_a / total_a
    p_b = successes_b / total_b
    pooled = (successes_a + successes_b) / (total_a + total_b)
    variance = pooled * (1.0 - pooled) * (1.0 / total_a + 1.0 / total_b)
    if variance <= 0.0:
        return 0.0
    return (p_a - p_b) / float(np.sqrt(variance))


def _effective_outcome_counts(record: dict) -> tuple[dict[str, int], int]:
    """Outcome counts the diff gate should compare, plus the total.

    Uniform records compare their observed counts directly.  A
    stratified record's raw counts are deliberately biased (converged
    cells stop early, unresolved ones keep sampling), so comparing them
    against a uniform campaign would flag the sampling design, not a
    rate shift.  The valid comparison is the Horvitz-Thompson
    reweighted rate scaled back to an effective count at the campaign's
    draw total — conservative, since the stratified estimator's true
    variance is at most the binomial variance the z-test assumes.
    """
    counts = record["counts"]
    total = int(counts["total"])
    sampling = record.get("sampling")
    if sampling:
        return {
            outcome: round(sampling["ht_rates"][outcome] * total)
            for outcome, _fields in OUTCOME_FIELDS
        }, total
    return {
        outcome: _outcome_count(counts, fields)
        for outcome, fields in OUTCOME_FIELDS
    }, total


def diff_records(record_a: dict, record_b: dict) -> dict:
    """Compare two stored records; returns rows and flagged shifts.

    Each row is ``{metric, count_a, total_a, count_b, total_b, rate_a,
    rate_b, z, flagged}``.  Outcome rates are always compared —
    stratified records contribute reweighted effective counts (see
    :func:`_effective_outcome_counts`), so stratified and uniform
    campaigns diff cleanly against each other; first-divergence stage
    rates are compared when both campaigns carry probe data.
    """
    rows = []

    def add_row(metric: str, count_a: int, total_a: int, count_b: int, total_b: int) -> None:
        # z's sign follows B relative to A, matching the rendered delta.
        z = two_proportion_z(count_b, total_b, count_a, total_a)
        rows.append(
            {
                "metric": metric,
                "count_a": count_a,
                "total_a": total_a,
                "count_b": count_b,
                "total_b": total_b,
                "rate_a": count_a / total_a if total_a else 0.0,
                "rate_b": count_b / total_b if total_b else 0.0,
                "z": z,
                "flagged": abs(z) > Z_THRESHOLD,
            }
        )

    effective_a, total_a = _effective_outcome_counts(record_a)
    effective_b, total_b = _effective_outcome_counts(record_b)
    for outcome, _fields in OUTCOME_FIELDS:
        add_row(
            f"outcome:{outcome}",
            effective_a[outcome],
            total_a,
            effective_b[outcome],
            total_b,
        )

    div_a = record_a["divergence"]
    div_b = record_b["divergence"]
    if div_a["probed"] and div_b["probed"]:
        for stage in (*STAGES, NONE_KEY):
            first_a = sum(div_a["first_divergence"].get(stage, {}).values())
            first_b = sum(div_b["first_divergence"].get(stage, {}).values())
            if first_a == 0 and first_b == 0:
                continue
            add_row(
                f"first_divergence:{stage}",
                int(first_a),
                int(div_a["probed"]),
                int(first_b),
                int(div_b["probed"]),
            )

    return {
        "rows": rows,
        "flagged": [row["metric"] for row in rows if row["flagged"]],
        "threshold": Z_THRESHOLD,
    }


def render_diff(
    diff: dict,
    fmt: str = "terminal",
    cid_a: str | None = None,
    cid_b: str | None = None,
) -> str:
    """Render a :func:`diff_records` result; byte-deterministic."""
    if fmt not in _RENDERERS:
        raise ValueError(f"unknown report format {fmt!r} (choose from {REPORT_FORMATS})")
    section = Section(
        f"Rate shifts (pooled two-proportion z, |z| > {diff['threshold']:g} flagged)",
        headers=["metric", "a", "b", "rate_a", "rate_b", "delta", "z", "flag"],
    )
    for row in diff["rows"]:
        section.rows.append(
            [
                row["metric"],
                f"{row['count_a']}/{row['total_a']}",
                f"{row['count_b']}/{row['total_b']}",
                _fmt_rate(row["rate_a"]),
                _fmt_rate(row["rate_b"]),
                f"{row['rate_b'] - row['rate_a']:+.4f}",
                f"{row['z']:+.2f}",
                "SHIFT" if row["flagged"] else "",
            ]
        )
    if diff["flagged"]:
        section.notes.append(
            f"{len(diff['flagged'])} significant shift(s): {', '.join(diff['flagged'])}"
        )
    else:
        section.notes.append("no statistically significant shifts")
    title = (
        f"Campaign diff {cid_a} vs {cid_b}" if cid_a and cid_b else "Campaign diff"
    )
    return _RENDERERS[fmt](title, [section])
