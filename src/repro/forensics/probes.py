"""Stage-boundary divergence probes for fault-propagation forensics.

The paper's central question is not just *whether* a flipped bit reaches
the output but *where it dies along the way* — masked by the ratio
test, absorbed by RANSAC's consensus, or surviving into the stitched
panorama as an SDC.  To make that observable per injection, the
pipeline's stage boundaries carry **probes**: when a
:class:`StageProbe` is active, each stage checksums its intermediate
output (FAST keypoints, ORB descriptors, the match set, the estimated
homography, the warped canvas, the final stitch) and appends the
checksum to the probe in execution order.

Comparing an injected run's probe stream against the golden run's
per-stage checksum sequences yields a
:class:`~repro.forensics.divergence.DivergenceRecord`: the first stage
whose output deviated, the last stage the run reached, and a per-stage
diverged/converged bitmap.

Determinism contract (mirrors :mod:`repro.telemetry`): probes only
*observe*.  They never touch an RNG, a register window or a cycle
counter, so probed campaigns are bit-identical in every outcome to
unprobed ones.  Disabled probing costs a single module-global ``None``
check per stage boundary — the same fast path the tracer uses.
"""

from __future__ import annotations

import contextlib
import zlib
from typing import Callable, Iterator

import numpy as np

#: Pipeline stages in dataflow order.  Bit ``i`` of a divergence bitmap
#: refers to ``STAGES[i]``; the order is part of the journal/store
#: contract, so append new stages at the end.
STAGES = ("fast", "orb", "match", "homography", "warp", "stitch")

#: Stage name -> bitmap bit position.
STAGE_INDEX = {name: index for index, name in enumerate(STAGES)}


def checksum_parts(*parts) -> int:
    """CRC32 over a heterogeneous tuple of stage-output parts.

    Arrays contribute their dtype, shape and raw bytes (so a reshaped
    or retyped array never aliases another); bytes/str/int/float
    contribute a tagged encoding.  Deterministic across processes —
    worker-side probes must agree with parent-side golden captures.
    """
    crc = 0
    for part in parts:
        if isinstance(part, np.ndarray):
            arr = np.ascontiguousarray(part)
            crc = zlib.crc32(f"a:{arr.dtype.str}:{arr.shape}".encode("ascii"), crc)
            crc = zlib.crc32(arr.tobytes(), crc)
        elif isinstance(part, (bytes, bytearray)):
            crc = zlib.crc32(b"b:" + bytes(part), crc)
        elif isinstance(part, str):
            crc = zlib.crc32(b"s:" + part.encode("utf-8"), crc)
        elif isinstance(part, (bool, int, np.integer)):
            crc = zlib.crc32(f"i:{int(part)}".encode("ascii"), crc)
        elif isinstance(part, (float, np.floating)):
            crc = zlib.crc32(f"f:{float(part).hex()}".encode("ascii"), crc)
        else:
            raise TypeError(f"unprobeable stage output part: {type(part)!r}")
    return crc


class StageProbe:
    """Collects one run's stage-boundary checksums in execution order."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        #: ``(stage, checksum)`` tuples, one per stage invocation.
        self.events: list[tuple[str, int]] = []

    def record(self, stage: str, checksum: int) -> None:
        """Append one stage invocation's checksum."""
        self.events.append((stage, checksum))

    @property
    def last_stage(self) -> str | None:
        """The stage of the final recorded event (None for an empty run)."""
        return self.events[-1][0] if self.events else None

    def signature(self) -> dict[str, tuple[int, ...]]:
        """Per-stage checksum sequences (the golden-reference shape)."""
        per_stage: dict[str, list[int]] = {stage: [] for stage in STAGES}
        for stage, crc in self.events:
            per_stage[stage].append(crc)
        return {stage: tuple(crcs) for stage, crcs in per_stage.items()}


#: The process-local active probe; ``None`` means probing is off — the
#: stage call sites check this single global and return immediately.
_PROBE: StageProbe | None = None


def active() -> bool:
    """True while a probe is capturing in this process."""
    return _PROBE is not None


def record(stage: str, *parts) -> None:
    """Checksum one stage invocation's output into the active probe.

    The disabled fast path is one global load and one comparison; call
    sites that must *build* anything (e.g. pack a keypoint list into an
    array) should guard with :func:`active` so the build cost is only
    paid while probing.
    """
    probe = _PROBE
    if probe is None:
        return
    probe.events.append((stage, checksum_parts(*parts)))


def replay_prefix(events: list[tuple[str, int]]) -> None:
    """Append pre-recorded golden stage events into the active probe.

    Golden-prefix fast-forward skips re-executing the uninjected prefix
    of an injected run; when divergence probes are on, the skipped
    stages' golden checksums are replayed here so the probe stream —
    and therefore every ``DivergenceRecord`` — is bit-identical to a
    full run's.  No-op when probing is off.
    """
    probe = _PROBE
    if probe is None:
        return
    probe.events.extend(events)


@contextlib.contextmanager
def capturing(probe: StageProbe | None) -> Iterator[StageProbe | None]:
    """Activate ``probe`` for the duration of the block (None = no-op).

    Captures nest by replacement: the previous probe is restored on
    exit, so a golden capture inside a larger capture never interleaves
    events.
    """
    global _PROBE
    if probe is None:
        yield None
        return
    previous = _PROBE
    _PROBE = probe
    try:
        yield probe
    finally:
        _PROBE = previous


def capture_run(run: Callable[[], object]) -> StageProbe:
    """Execute ``run()`` under a fresh probe and return the probe."""
    probe = StageProbe()
    with capturing(probe):
        run()
    return probe


# ---------------------------------------------------------------------------
# Golden-signature cache
# ---------------------------------------------------------------------------

#: Per-process cache: id(workload) -> (pinned workload, signature).
#: The workload object is pinned so its id can never be recycled while
#: the entry lives; campaigns create one monitor per chunk but share the
#: workload closure, so the golden run is re-probed once per process,
#: not once per chunk.
_GOLDEN_SIGNATURES: dict[int, tuple[object, dict[str, tuple[int, ...]]]] = {}


def golden_signature_for(
    workload: object, compute: Callable[[], dict[str, tuple[int, ...]]]
) -> dict[str, tuple[int, ...]]:
    """The cached per-stage golden checksum sequences for ``workload``."""
    key = id(workload)
    entry = _GOLDEN_SIGNATURES.get(key)
    if entry is not None and entry[0] is workload:
        return entry[1]
    signature = compute()
    _GOLDEN_SIGNATURES[key] = (workload, signature)
    return signature


def clear_golden_signatures() -> None:
    """Drop all cached golden signatures (test isolation)."""
    _GOLDEN_SIGNATURES.clear()
