"""Typed cross-campaign slicing queries over the result store.

The paper's resiliency conclusions come from slicing injection outcomes
by register class, bit position, and pipeline stage (Figs. 10-12).
This module turns the stored corpus into that slicing surface: a
:class:`StoreQuery` names campaign-level filters (label, kind, sampling
mode, ids), per-injection filters (outcome, crash kind, register class,
bit octet, first-divergence stage, fired), and a ``group_by`` list; the
result is one row per group with count, rate, and Wilson 95% CI.

Two engines answer the same query:

* :func:`index_query` — SQL over the v2 store's SQLite index
  (O(log n) slicing; the production path), and
* :func:`scan_query` — a brute-force walk of the raw record segments
  (the v1 fallback and the *reference semantics*: the hypothesis suite
  pins ``index_query == scan_query`` row for row).

:func:`run_query` picks the engine from the store layout.  Rates use
the filtered injection population as their denominator, so "share of
SDCs that first diverged in ``warp``" is one ``--where outcome=sdc
--group-by stage`` away (CLI: ``repro report query``).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Iterable

from repro.faultinject.outcomes import wilson_interval
from repro.forensics.report import Section
from repro.forensics.store import (
    LAYOUT_V2,
    CampaignStore,
    StoreError,
    injection_view,
)

#: Campaign-level fields: filter/group values come from the campaign
#: row, shared by every injection of that campaign.
CAMPAIGN_FIELDS = ("campaign", "label", "kind", "sampling", "seed", "probe")

#: Per-injection fields (normalized through ``injection_view``).
INJECTION_FIELDS = (
    "outcome",
    "crash_kind",
    "register",
    "bit",
    "register_class",
    "bit_octet",
    "stage",
    "last_stage",
    "fired",
)

QUERY_FIELDS = CAMPAIGN_FIELDS + INJECTION_FIELDS

#: Fields whose values are integers (filters are coerced, sort order is
#: numeric in both engines).
_INT_FIELDS = {"seed", "probe", "register", "bit", "register_class", "bit_octet", "fired"}

#: Field name -> SQL expression over campaigns c / injections i.
_SQL_EXPR = {
    "campaign": "c.cid",
    "label": "COALESCE(c.label, '')",
    "kind": "c.kind",
    "sampling": "c.sampling",
    "seed": "c.seed",
    "probe": "c.probe",
    "outcome": "i.outcome",
    "crash_kind": "i.crash_kind",
    "register": "i.register",
    "bit": "i.bit",
    "register_class": "i.register_class",
    "bit_octet": "i.bit_octet",
    "stage": "i.first_divergence",
    "last_stage": "i.last_stage",
    "fired": "i.fired",
}


class QueryError(ValueError):
    """The query is malformed (unknown field, bad value)."""


@dataclass(frozen=True)
class StoreQuery:
    """One slicing query: conjunctive filters + grouping fields.

    ``filters`` maps a field name to the tuple of accepted values
    (OR within a field, AND across fields); ``group_by`` lists the
    fields each result row is keyed by.
    """

    filters: dict = dataclass_field(default_factory=dict)
    group_by: tuple = ("outcome",)

    def __post_init__(self) -> None:
        for field in (*self.filters, *self.group_by):
            if field not in QUERY_FIELDS:
                raise QueryError(
                    f"unknown query field {field!r} "
                    f"(choose from {', '.join(QUERY_FIELDS)})"
                )
        if not self.group_by:
            raise QueryError("group_by needs at least one field")
        for field, values in self.filters.items():
            if not isinstance(values, tuple) or not values:
                raise QueryError(
                    f"filter {field!r} needs a non-empty tuple of values"
                )

    @classmethod
    def from_options(
        cls, where: Iterable[str] = (), group_by: str | None = None
    ) -> "StoreQuery":
        """Build from CLI-style options.

        ``where`` items are ``field=value`` (repeat a field to OR
        values); ``group_by`` is a comma-separated field list.
        """
        filters: dict[str, tuple] = {}
        for clause in where:
            field, sep, raw = clause.partition("=")
            field = field.strip()
            if not sep or not field:
                raise QueryError(f"--where needs field=value, got {clause!r}")
            value = _coerce(field, raw.strip())
            filters[field] = (*filters.get(field, ()), value)
        fields = tuple(
            part.strip() for part in (group_by or "outcome").split(",") if part.strip()
        )
        return cls(filters=filters, group_by=fields)


def _coerce(field: str, raw: str):
    if field in _INT_FIELDS:
        try:
            return int(raw)
        except ValueError:
            raise QueryError(f"filter {field!r} needs an integer, got {raw!r}") from None
    return raw


def _sort_key(values: tuple) -> tuple:
    # Mixed int/str group keys sort type-stably in both engines.
    return tuple((0, value) if isinstance(value, int) else (1, str(value)) for value in values)


def _finalize(groups: dict, total: int, query: StoreQuery) -> dict:
    rows = []
    for key in sorted(groups, key=_sort_key):
        count = groups[key]
        low, high = wilson_interval(count, total)
        rows.append(
            {
                "group": dict(zip(query.group_by, key)),
                "count": count,
                "rate": count / total if total else 0.0,
                "ci_low": low,
                "ci_high": high,
            }
        )
    return {
        "group_by": list(query.group_by),
        "filters": {field: list(values) for field, values in sorted(query.filters.items())},
        "total": total,
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Engines
# ---------------------------------------------------------------------------


def scan_query(store: CampaignStore, query: StoreQuery) -> dict:
    """Brute-force reference engine: decode and walk every record."""
    groups: dict[tuple, int] = {}
    total = 0
    for cid, record in store.records():
        meta = {
            "campaign": cid,
            "label": record.get("label") or "",
            "kind": record["fingerprint"]["kind"],
            "sampling": "stratified" if record.get("sampling") else "uniform",
            "seed": int(record["fingerprint"]["seed"]),
            "probe": 1 if record["fingerprint"].get("probe") else 0,
        }
        if any(
            meta[field] not in values
            for field, values in query.filters.items()
            if field in meta
        ):
            continue
        injection_filters = [
            (field, values)
            for field, values in query.filters.items()
            if field not in meta
        ]
        for row in record["injections"]:
            view = injection_view(row)
            view["stage"] = view.pop("first_divergence")
            if any(view[field] not in values for field, values in injection_filters):
                continue
            total += 1
            key = tuple(
                meta[field] if field in meta else view[field]
                for field in query.group_by
            )
            groups[key] = groups.get(key, 0) + 1
    return _finalize(groups, total, query)


def index_query(store: CampaignStore, query: StoreQuery) -> dict:
    """Indexed engine: one SQL aggregate over the SQLite index."""
    if store.layout != LAYOUT_V2:
        raise StoreError(
            f"store {store.root} has no SQLite index (layout v1); "
            f"run `repro store migrate {store.root}`"
        )
    conn = store._db()
    clauses = []
    params: list = []
    for field, values in query.filters.items():
        expr = _SQL_EXPR[field]
        clauses.append(f"{expr} IN ({', '.join('?' for _ in values)})")
        params.extend(values)
    where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
    select = ", ".join(_SQL_EXPR[field] for field in query.group_by)
    sql = (
        f"SELECT {select}, COUNT(*) FROM injections i "
        f"JOIN campaigns c ON c.seq = i.campaign_seq {where} "
        f"GROUP BY {select}"
    )
    groups: dict[tuple, int] = {}
    total = 0
    for *key, count in conn.execute(sql, params):
        groups[tuple(key)] = int(count)
        total += int(count)
    return _finalize(groups, total, query)


def run_query(store: CampaignStore, query: StoreQuery) -> dict:
    """Answer a query with the best engine the store layout allows."""
    if store.layout == LAYOUT_V2:
        return index_query(store, query)
    return scan_query(store, query)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def query_sections(result: dict) -> list[Section]:
    """Report sections for one query result (``repro report query``)."""
    filters = result["filters"]
    scope = Section("Query", headers=["field", "value"])
    scope.rows = [
        ["group by", ", ".join(result["group_by"])],
        [
            "where",
            "; ".join(
                f"{field} in ({', '.join(str(v) for v in values)})"
                for field, values in filters.items()
            )
            or "-",
        ],
        ["matching injections", result["total"]],
    ]

    table = Section(
        "Grouped counts (Wilson 95% CI over the filtered population)",
        headers=[*result["group_by"], "count", "rate", "ci_low", "ci_high"],
    )
    for row in result["rows"]:
        table.rows.append(
            [
                *[row["group"][field] for field in result["group_by"]],
                row["count"],
                f"{row['rate']:.4f}",
                f"{row['ci_low']:.4f}",
                f"{row['ci_high']:.4f}",
            ]
        )
    if not result["rows"]:
        table.notes.append("no injections match the filters")
    return [scope, table]
