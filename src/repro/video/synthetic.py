"""The two benchmark inputs: synthetic stand-ins for the VIRAT videos.

Paper Section III-B evaluates two aerial videos whose character differs:

* **Input 1** (09152008flight2tape1_2): many scene changes and large
  inter-frame variation — many mini-panoramas, and approximations cause
  cascading frame discards (big speedups, bigger quality cost).
* **Input 2** (09152008flight2tape2_4): a steadier flight with high
  inter-frame redundancy — approximations change little.

:func:`make_input1` / :func:`make_input2` regenerate those characters
from seeds.  Frame counts and sizes default to a single-core-friendly
scale; the paper-scale values (1000 frames) are a parameter away.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.video.camera import busy_path, render_frame, steady_path
from repro.video.frames import FrameStream
from repro.video.terrain import make_landscape

#: Default frame size (w, h): small enough for thousands of injection
#: runs on one core, large enough for ~60-100 ORB keypoints per frame.
DEFAULT_FRAME_SIZE = (96, 72)

#: Default number of frames per input.
DEFAULT_NUM_FRAMES = 48


def _render_stream(
    name: str,
    landscape: np.ndarray,
    states,
    frame_size: tuple[int, int],
    seed: int,
) -> FrameStream:
    frame_w, frame_h = frame_size
    noise_rng = np.random.default_rng(seed)
    frames = [
        render_frame(landscape, state, frame_w, frame_h, noise_rng) for state in states
    ]
    return FrameStream(name=name, frames=frames)


def make_input1(
    seed: int = 11,
    n_frames: int = DEFAULT_NUM_FRAMES,
    frame_size: tuple[int, int] = DEFAULT_FRAME_SIZE,
) -> FrameStream:
    """Input 1: busy flight with abrupt scene cuts."""
    rng = np.random.default_rng(seed)
    landscape = make_landscape(seed=seed)
    states = busy_path(n_frames, rng, landscape.shape)
    return _render_stream("input1", landscape, states, frame_size, seed + 1)


def make_input2(
    seed: int = 22,
    n_frames: int = DEFAULT_NUM_FRAMES,
    frame_size: tuple[int, int] = DEFAULT_FRAME_SIZE,
) -> FrameStream:
    """Input 2: steady sweep with high inter-frame redundancy."""
    rng = np.random.default_rng(seed)
    landscape = make_landscape(seed=seed)
    states = steady_path(n_frames, rng, landscape.shape)
    return _render_stream("input2", landscape, states, frame_size, seed + 1)


def make_input(
    which: str,
    seed: int | None = None,
    n_frames: int = DEFAULT_NUM_FRAMES,
    frame_size: tuple[int, int] = DEFAULT_FRAME_SIZE,
) -> FrameStream:
    """Dispatch on the paper's input name: ``"input1"`` or ``"input2"``."""
    if which == "input1":
        return make_input1(seed if seed is not None else 11, n_frames, frame_size)
    if which == "input2":
        return make_input2(seed if seed is not None else 22, n_frames, frame_size)
    raise ValueError(f"unknown input {which!r}; expected 'input1' or 'input2'")


_INPUT_CACHE: dict[tuple[str, int, tuple[int, int]], FrameStream] = {}


def cached_input(
    which: str,
    n_frames: int = DEFAULT_NUM_FRAMES,
    frame_size: tuple[int, int] = DEFAULT_FRAME_SIZE,
) -> FrameStream:
    """A process-wide cached :func:`make_input` (default seeds only).

    Experiments and campaign worker processes share this cache so each
    named input is rendered at most once per process and scale.
    """
    key = (which, n_frames, tuple(frame_size))
    if key not in _INPUT_CACHE:
        _INPUT_CACHE[key] = make_input(which, n_frames=n_frames, frame_size=frame_size)
    return _INPUT_CACHE[key]


@dataclass
class EventInput:
    """A frame stream with planted movers and full ground truth."""

    stream: FrameStream
    objects: list  # list[MovingObject]
    states: list  # list[CameraState], one per frame


def make_event_input(
    seed: int = 33,
    n_frames: int = DEFAULT_NUM_FRAMES,
    frame_size: tuple[int, int] = DEFAULT_FRAME_SIZE,
    n_objects: int = 3,
) -> EventInput:
    """A steady-sweep input with moving objects, for event summarization.

    The paper's full workflow (Fig. 2) tracks vehicles/pedestrians and
    overlays their tracks on the coverage panorama; this input provides
    the movers plus ground truth for evaluating the event pipeline.
    """
    from repro.imaging.image import saturate_cast_u8
    from repro.video.camera import render_frame
    from repro.video.objects import spawn_objects, stamp_objects

    rng = np.random.default_rng(seed)
    landscape = make_landscape(seed=seed)
    states = steady_path(n_frames, rng, landscape.shape, step=4.0)
    objects = spawn_objects(rng, landscape.shape, n_objects)

    # Spawn movers near the camera's sweep so they stay in view.
    mid_state = states[len(states) // 2]
    objects = [
        type(obj)(
            object_id=obj.object_id,
            start_x=mid_state.center_x + float(rng.uniform(-60, 60)),
            start_y=mid_state.center_y + float(rng.uniform(-40, 40)),
            velocity_x=obj.velocity_x,
            velocity_y=obj.velocity_y,
            width=obj.width,
            height=obj.height,
            intensity=obj.intensity,
        )
        for obj in objects
    ]

    frame_w, frame_h = frame_size
    world = landscape.astype(np.float64)
    noise_rng = np.random.default_rng(seed + 1)
    frames = []
    for index, state in enumerate(states):
        stamped = saturate_cast_u8(stamp_objects(world, objects, index))
        frames.append(render_frame(stamped, state, frame_w, frame_h, noise_rng))
    return EventInput(
        stream=FrameStream(name="event_input", frames=frames),
        objects=objects,
        states=states,
    )
