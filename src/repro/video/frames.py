"""Frame stream abstraction and input-level transformations."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class FrameStream:
    """An immutable, named sequence of grayscale frames.

    Inputs are materialized once per experiment so that every run —
    golden or fault-injected — consumes byte-identical frames.
    """

    name: str
    frames: list[np.ndarray] = field(default_factory=list)

    def __post_init__(self) -> None:
        for index, frame in enumerate(self.frames):
            if frame.ndim != 2 or frame.dtype != np.uint8:
                raise ValueError(f"frame {index} is not a (h, w) uint8 image")
            frame.setflags(write=False)

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self):
        return iter(self.frames)

    def __getitem__(self, index: int) -> np.ndarray:
        return self.frames[index]

    @property
    def frame_shape(self) -> tuple[int, int]:
        """Shape ``(h, w)`` of the frames (streams are homogeneous)."""
        if not self.frames:
            raise ValueError("empty frame stream has no shape")
        return self.frames[0].shape  # type: ignore[return-value]

    def subsample(self, factor: int) -> "FrameStream":
        """Keep every ``factor``-th frame (the paper's downsampling)."""
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        return FrameStream(
            name=f"{self.name}/sub{factor}",
            frames=[frame.copy() for frame in self.frames[::factor]],
        )


def drop_frames_randomly(
    stream: FrameStream,
    drop_fraction: float,
    rng: np.random.Generator,
) -> FrameStream:
    """Randomly drop a fraction of frames (the VS_RFD input approximation).

    The surviving frames keep their order.  The paper drops up to 10% of
    the input frames (Section IV).
    """
    if not 0.0 <= drop_fraction < 1.0:
        raise ValueError(f"drop_fraction must be in [0, 1), got {drop_fraction}")
    n = len(stream)
    n_drop = int(round(n * drop_fraction))
    if n_drop == 0:
        return FrameStream(name=f"{stream.name}/rfd0", frames=[f.copy() for f in stream])
    dropped = set(rng.choice(n, size=n_drop, replace=False).tolist())
    kept = [frame.copy() for index, frame in enumerate(stream) if index not in dropped]
    return FrameStream(name=f"{stream.name}/rfd{drop_fraction:.2f}", frames=kept)
