"""Synthetic aerial-video inputs (stand-ins for the VIRAT dataset)."""

from repro.video.camera import CameraState, busy_path, render_frame, steady_path
from repro.video.frames import FrameStream, drop_frames_randomly
from repro.video.objects import MovingObject, spawn_objects, stamp_objects
from repro.video.synthetic import (
    DEFAULT_FRAME_SIZE,
    DEFAULT_NUM_FRAMES,
    EventInput,
    cached_input,
    make_event_input,
    make_input,
    make_input1,
    make_input2,
)
from repro.video.terrain import make_landscape, value_noise

__all__ = [
    "CameraState",
    "busy_path",
    "steady_path",
    "render_frame",
    "FrameStream",
    "drop_frames_randomly",
    "make_landscape",
    "value_noise",
    "make_input",
    "cached_input",
    "make_input1",
    "make_input2",
    "EventInput",
    "make_event_input",
    "MovingObject",
    "spawn_objects",
    "stamp_objects",
    "DEFAULT_FRAME_SIZE",
    "DEFAULT_NUM_FRAMES",
]
