"""Procedural aerial landscape generation.

The VIRAT aerial videos are not redistributable, so the inputs are
rendered from a synthetic landscape: multi-octave value noise for ground
texture, plus roads, buildings and field boundaries that give the FAST
detector the corner structure real aerial imagery has.
"""

from __future__ import annotations

import numpy as np

from repro.imaging.draw import draw_line, fill_disk, fill_rect
from repro.imaging.image import saturate_cast_u8


def value_noise(
    rng: np.random.Generator,
    height: int,
    width: int,
    octaves: int = 4,
    base_cells: int = 8,
    persistence: float = 0.55,
) -> np.ndarray:
    """Multi-octave value noise in [0, 1] of shape ``(height, width)``."""
    field = np.zeros((height, width), dtype=np.float64)
    amplitude = 1.0
    total = 0.0
    for octave in range(octaves):
        cells = base_cells * (2**octave)
        grid = rng.random((cells + 1, cells + 1))
        field += amplitude * _bilinear_upsample(grid, height, width)
        total += amplitude
        amplitude *= persistence
    return field / total


def _bilinear_upsample(grid: np.ndarray, height: int, width: int) -> np.ndarray:
    """Bilinearly stretch a coarse grid to ``(height, width)``."""
    gh, gw = grid.shape
    ys = np.linspace(0, gh - 1, height)
    xs = np.linspace(0, gw - 1, width)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, gh - 1)
    x1 = np.minimum(x0 + 1, gw - 1)
    fy = (ys - y0)[:, np.newaxis]
    fx = (xs - x0)[np.newaxis, :]
    top = grid[np.ix_(y0, x0)] * (1 - fx) + grid[np.ix_(y0, x1)] * fx
    bottom = grid[np.ix_(y1, x0)] * (1 - fx) + grid[np.ix_(y1, x1)] * fx
    return top * (1 - fy) + bottom * fy


def make_landscape(seed: int, height: int = 900, width: int = 1200) -> np.ndarray:
    """Render a synthetic aerial landscape as a grayscale uint8 image.

    The landscape mixes smooth terrain, a road network, building blocks
    and scattered circular features (tanks, trees) so that every local
    neighbourhood carries enough corners and texture for feature
    matching.
    """
    rng = np.random.default_rng(seed)
    field = 60.0 + 120.0 * value_noise(rng, height, width)
    area = height * width

    # Field boundaries: large rectangles with slightly different tones.
    for _ in range(24):
        x = int(rng.integers(0, width))
        y = int(rng.integers(0, height))
        w = int(rng.integers(width // 12, width // 4))
        h = int(rng.integers(height // 12, height // 4))
        tone = float(rng.uniform(70, 190))
        patch = field[y : y + h, x : x + w]
        if patch.size:
            patch += 0.35 * (tone - patch)

    # Road network: a loose grid plus diagonals.
    for _ in range(28):
        if rng.random() < 0.5:
            y0 = float(rng.uniform(0, height))
            y1 = y0 + float(rng.uniform(-height / 4, height / 4))
            draw_line(field, 0, y0, width - 1, y1, value=rng.uniform(30, 50), thickness=3)
        else:
            x0 = float(rng.uniform(0, width))
            x1 = x0 + float(rng.uniform(-width / 4, width / 4))
            draw_line(field, x0, 0, x1, height - 1, value=rng.uniform(30, 50), thickness=3)

    # Building blocks: bright rectangles with darker shadows.  Density is
    # tied to area so every camera window sees a healthy corner budget.
    for _ in range(max(1, area // 320)):
        x = int(rng.integers(0, width - 14))
        y = int(rng.integers(0, height - 14))
        w = int(rng.integers(3, 12))
        h = int(rng.integers(3, 12))
        tone = float(rng.uniform(150, 245)) if rng.random() < 0.7 else float(rng.uniform(15, 60))
        fill_rect(field, x, y, w, h, tone)
        fill_rect(field, x + w, y + 1, 2, h, tone * 0.35)

    # Scattered disks: vegetation / vehicles.
    for _ in range(max(1, area // 250)):
        cx = float(rng.uniform(0, width))
        cy = float(rng.uniform(0, height))
        radius = float(rng.uniform(1.0, 3.5))
        fill_disk(field, cx, cy, radius, float(rng.uniform(20, 230)))

    # Dense fine-scale corner dots: every frame-sized window should carry
    # a healthy FAST corner budget even in open terrain.
    for _ in range(max(1, area // 90)):
        cx = int(rng.integers(1, width - 2))
        cy = int(rng.integers(1, height - 2))
        tone = float(rng.uniform(0, 255))
        size = int(rng.integers(1, 3))
        fill_rect(field, cx, cy, size, size, tone)

    # Fine sensor-scale texture so flat regions still carry gradient.
    field += rng.normal(0.0, 3.0, size=field.shape)
    return saturate_cast_u8(field)
