"""Moving objects in the synthetic world (vehicles, pedestrians).

The paper's full VS workflow (Fig. 2) contains an *event summarization*
branch — detection, recognition and tracking of moving objects — whose
results are overlaid on the coverage panorama.  The VIRAT videos contain
real vehicles and pedestrians; this module plants synthetic movers with
known ground-truth trajectories into the rendered frames, so the event
pipeline can be evaluated exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MovingObject:
    """One mover: a bright/dark rectangle following a linear path."""

    object_id: int
    start_x: float  # landscape coordinates at frame 0
    start_y: float
    velocity_x: float  # landscape pixels per frame
    velocity_y: float
    width: float
    height: float
    intensity: float  # rendered tone (0..255)

    def position(self, frame_index: int) -> tuple[float, float]:
        """Ground-truth centre position at a frame index."""
        return (
            self.start_x + self.velocity_x * frame_index,
            self.start_y + self.velocity_y * frame_index,
        )


def spawn_objects(
    rng: np.random.Generator,
    landscape_shape: tuple[int, int],
    n_objects: int,
    speed_range: tuple[float, float] = (1.0, 4.0),
    size_range: tuple[float, float] = (4.0, 9.0),
) -> list[MovingObject]:
    """Plant movers with random linear paths across the landscape."""
    height, width = landscape_shape
    objects = []
    for object_id in range(n_objects):
        speed = float(rng.uniform(*speed_range))
        heading = float(rng.uniform(0.0, 2.0 * np.pi))
        # Alternate very bright and very dark movers so they contrast
        # against any terrain underneath.
        intensity = 250.0 if object_id % 2 == 0 else 5.0
        objects.append(
            MovingObject(
                object_id=object_id,
                start_x=float(rng.uniform(width * 0.25, width * 0.75)),
                start_y=float(rng.uniform(height * 0.25, height * 0.75)),
                velocity_x=speed * float(np.cos(heading)),
                velocity_y=speed * float(np.sin(heading)),
                width=float(rng.uniform(*size_range)),
                height=float(rng.uniform(*size_range)),
                intensity=intensity,
            )
        )
    return objects


def stamp_objects(
    world: np.ndarray,
    objects: list[MovingObject],
    frame_index: int,
) -> np.ndarray:
    """Return a copy of the landscape with the movers stamped at a frame.

    ``world`` is the float64 landscape; the camera renderer samples the
    returned array so the movers obey the same projection as the
    terrain.
    """
    stamped = world.copy()
    height, width = stamped.shape
    for obj in objects:
        cx, cy = obj.position(frame_index)
        x0 = int(np.floor(cx - obj.width / 2.0))
        x1 = int(np.ceil(cx + obj.width / 2.0))
        y0 = int(np.floor(cy - obj.height / 2.0))
        y1 = int(np.ceil(cy + obj.height / 2.0))
        x0, x1 = max(0, x0), min(width, x1)
        y0, y1 = max(0, y0), min(height, y1)
        if x0 < x1 and y0 < y1:
            stamped[y0:y1, x0:x1] = obj.intensity
    return stamped
