"""Moving-camera model: per-frame pose, optics and illumination.

A :class:`CameraState` fixes where one frame looks in the landscape; a
camera *path* is a list of states.  Two path generators mirror the two
VIRAT inputs the paper profiles (Section III-B):

* :func:`busy_path` — frequent large displacements, rotation and zoom
  drift, and abrupt segment cuts (Input 1: many scene changes, many
  mini-panoramas),
* :func:`steady_path` — one slow smooth sweep (Input 2: high
  inter-frame redundancy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.imaging.geometry import rotation, scaling, translation
from repro.imaging.image import saturate_cast_u8


@dataclass(frozen=True)
class CameraState:
    """Pose and imaging conditions of one frame."""

    center_x: float  # landscape coordinates the frame is centred on
    center_y: float
    angle: float  # camera roll in radians
    zoom: float  # landscape pixels per frame pixel
    gain: float  # illumination multiplier
    offset: float  # illumination bias
    segment: int  # scene-cut segment this frame belongs to

    def frame_to_world(self, frame_w: int, frame_h: int) -> np.ndarray:
        """3x3 transform from frame pixel coords to landscape coords."""
        to_center = translation(-(frame_w - 1) / 2.0, -(frame_h - 1) / 2.0)
        zoom_rot = rotation(self.angle) @ scaling(self.zoom)
        place = translation(self.center_x, self.center_y)
        return place @ zoom_rot @ to_center


def render_frame(
    landscape: np.ndarray,
    state: CameraState,
    frame_w: int,
    frame_h: int,
    noise_rng: np.random.Generator,
    noise_sigma: float = 1.0,
) -> np.ndarray:
    """Sample one camera frame from the landscape (bilinear, clamped)."""
    world = landscape.astype(np.float64)
    h, w = world.shape
    transform = state.frame_to_world(frame_w, frame_h)

    xs = np.arange(frame_w, dtype=np.float64)
    ys = np.arange(frame_h, dtype=np.float64)
    grid_x, grid_y = np.meshgrid(xs, ys)
    wx = transform[0, 0] * grid_x + transform[0, 1] * grid_y + transform[0, 2]
    wy = transform[1, 0] * grid_x + transform[1, 1] * grid_y + transform[1, 2]
    wx = np.clip(wx, 0.0, w - 1.0)
    wy = np.clip(wy, 0.0, h - 1.0)

    x0 = np.floor(wx).astype(np.intp)
    y0 = np.floor(wy).astype(np.intp)
    x1 = np.minimum(x0 + 1, w - 1)
    y1 = np.minimum(y0 + 1, h - 1)
    fx = wx - x0
    fy = wy - y0
    top = world[y0, x0] * (1 - fx) + world[y0, x1] * fx
    bottom = world[y1, x0] * (1 - fx) + world[y1, x1] * fx
    sampled = top * (1 - fy) + bottom * fy

    lit = state.gain * sampled + state.offset
    lit += noise_rng.normal(0.0, noise_sigma, size=lit.shape)
    return saturate_cast_u8(lit)


def steady_path(
    n_frames: int,
    rng: np.random.Generator,
    landscape_shape: tuple[int, int],
    step: float = 5.0,
) -> list[CameraState]:
    """One smooth sweep across the landscape (the Input 2 profile)."""
    height, width = landscape_shape
    margin_x, margin_y = width * 0.22, height * 0.25
    x = float(rng.uniform(margin_x, margin_x * 1.3))
    y = float(rng.uniform(margin_y, height - margin_y))
    heading = float(rng.uniform(-0.25, 0.25))
    angle = 0.0
    zoom = 1.0
    states = []
    for index in range(n_frames):
        states.append(
            CameraState(
                center_x=x,
                center_y=y,
                angle=angle,
                zoom=zoom,
                gain=1.0 + 0.02 * np.sin(index / 40.0),
                offset=float(rng.normal(0.0, 0.5)),
                segment=0,
            )
        )
        x += step * float(np.cos(heading)) + float(rng.normal(0.0, 0.3))
        y += step * float(np.sin(heading)) + float(rng.normal(0.0, 0.3))
        heading += float(rng.normal(0.0, 0.004))
        angle += float(rng.normal(0.0, 0.002))
        zoom *= float(1.0 + rng.normal(0.0, 0.0015))
        if x < margin_x or x > width - margin_x:
            heading = float(np.pi - heading)
            x = float(np.clip(x, margin_x, width - margin_x))
        if y < margin_y or y > height - margin_y:
            heading = -heading
            y = float(np.clip(y, margin_y, height - margin_y))
    return states


def busy_path(
    n_frames: int,
    rng: np.random.Generator,
    landscape_shape: tuple[int, int],
    step: float = 32.0,
    segment_every: tuple[int, int] = (12, 22),
) -> list[CameraState]:
    """Fast flight with abrupt scene cuts (the Input 1 profile)."""
    height, width = landscape_shape
    margin_x, margin_y = width * 0.22, height * 0.25
    states: list[CameraState] = []
    segment = -1
    index = 0
    while index < n_frames:
        segment += 1
        segment_len = int(rng.integers(segment_every[0], segment_every[1]))
        x = float(rng.uniform(margin_x, width - margin_x))
        y = float(rng.uniform(margin_y, height - margin_y))
        heading = float(rng.uniform(0, 2 * np.pi))
        angle = float(rng.uniform(-0.3, 0.3))
        zoom = float(rng.uniform(0.9, 1.15))
        for _ in range(min(segment_len, n_frames - index)):
            states.append(
                CameraState(
                    center_x=x,
                    center_y=y,
                    angle=angle,
                    zoom=zoom,
                    gain=1.0 + float(rng.normal(0.0, 0.01)),
                    offset=float(rng.normal(0.0, 1.0)),
                    segment=segment,
                )
            )
            x += step * float(np.cos(heading)) + float(rng.normal(0.0, 0.8))
            y += step * float(np.sin(heading)) + float(rng.normal(0.0, 0.8))
            heading += float(rng.normal(0.0, 0.03))
            angle += float(rng.normal(0.0, 0.01))
            zoom *= float(1.0 + rng.normal(0.0, 0.002))
            # Bounce off the margins: clamping would freeze the camera and
            # make consecutive frames identical.
            if x < margin_x or x > width - margin_x:
                heading = float(np.pi - heading)
                x = float(np.clip(x, margin_x, width - margin_x))
            if y < margin_y or y > height - margin_y:
                heading = -heading
                y = float(np.clip(y, margin_y, height - margin_y))
            index += 1
    return states
