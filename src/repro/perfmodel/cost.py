"""Analytic cycle-cost model for every kernel in the library.

The paper measures IPC, execution time and energy on an IBM POWER8 server
(Fig. 5) and a ``perf`` execution profile (Fig. 8).  Neither is available
here, so each kernel charges an analytic cycle cost per unit of work to the
:class:`~repro.runtime.context.ExecutionContext`.  The constants below are
calibrated so that the *relative* structure of the paper's numbers holds:

* per-pixel perspective warping dominates (WarpPerspectiveInvoker was
  54.4% of the paper's execution time),
* descriptor matching is O(n^2) in keypoints (the lever behind VS_KDS),
* per-frame fixed costs make total time roughly polynomial in the number
  of frames actually stitched (the lever behind VS_RFD).

All constants are cycles per unit of work.  They are deliberately kept in
one table so that calibration is a single-file affair.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Cycles charged per unit of work, by kernel.  Units are noted per entry.
KERNEL_CYCLES: dict[str, int] = {
    # imaging -------------------------------------------------------------
    "frame.acquire_px": 2,  # per pixel: read a frame into memory
    "color.gray_px": 3,  # per pixel: RGB -> grayscale
    "filter.blur_px": 4,  # per pixel per pass: separable Gaussian
    "warp.px": 56,  # per output pixel: inverse coordinate mapping + store
    "warp.remap_px": 18,  # per output pixel: bilinear sample gather
    "warp.saturate_px": 3,  # per output pixel: float -> uint8 saturating store
    "composite.px": 5,  # per pixel: blend a warped frame into a panorama
    # vision --------------------------------------------------------------
    "fast.px": 5,  # per pixel: FAST segment test
    "fast.nms_kp": 40,  # per candidate keypoint: non-max suppression
    "orb.describe_kp": 400,  # per keypoint: orientation + 256-bit BRIEF
    "orb.harris_px": 4,  # per pixel: Harris response for keypoint ranking
    "match.pair": 18,  # per descriptor pair: Hamming distance + compare
    "ransac.iter": 800,  # per RANSAC iteration: sample + solve + score
    "homography.solve": 4000,  # per final least-squares refit
    "affine.solve": 3000,  # per affine least-squares fit
    # events ---------------------------------------------------------------
    "events.diff_px": 6,  # per pixel: registered frame differencing
    "events.label_px": 4,  # per pixel: morphology + connected components
    "events.track_det": 300,  # per (track, detection) pair: association
    "events.overlay_px": 2,  # per drawn pixel: track overlay rendering
    # summarize -----------------------------------------------------------
    "pipeline.frame_overhead": 4000,  # per frame: bookkeeping, queues
    "pipeline.anchor_update": 2000,  # per stitched frame: chain transforms
}


@dataclass(frozen=True)
class InstructionMix:
    """Instruction-mix model of one kernel, used to derive IPC.

    Fractions must sum to 1.  ``ipc`` is the per-kernel achieved IPC used
    to convert cycles into instructions; the workload-level IPC is the
    instruction-weighted aggregate.
    """

    int_ops: float
    fp_ops: float
    mem_ops: float
    branch_ops: float
    ipc: float

    def __post_init__(self) -> None:
        total = self.int_ops + self.fp_ops + self.mem_ops + self.branch_ops
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"instruction mix fractions sum to {total}, not 1")


#: Instruction mix per profiling-scope prefix.  Scopes are matched by the
#: longest prefix present in this table.
SCOPE_MIX: dict[str, InstructionMix] = {
    "imaging.warp": InstructionMix(0.30, 0.25, 0.35, 0.10, ipc=1.55),
    "imaging.filters": InstructionMix(0.35, 0.20, 0.35, 0.10, ipc=1.70),
    "imaging.color": InstructionMix(0.45, 0.10, 0.35, 0.10, ipc=1.80),
    "imaging": InstructionMix(0.40, 0.10, 0.40, 0.10, ipc=1.60),
    "vision.fast": InstructionMix(0.45, 0.00, 0.30, 0.25, ipc=1.65),
    "vision.orb": InstructionMix(0.40, 0.15, 0.30, 0.15, ipc=1.50),
    "vision.matching": InstructionMix(0.50, 0.05, 0.30, 0.15, ipc=1.60),
    "vision.ransac": InstructionMix(0.25, 0.45, 0.20, 0.10, ipc=1.40),
    "vision": InstructionMix(0.40, 0.20, 0.25, 0.15, ipc=1.50),
    "summarize": InstructionMix(0.45, 0.05, 0.30, 0.20, ipc=1.45),
    "events": InstructionMix(0.45, 0.10, 0.30, 0.15, ipc=1.55),
    "video": InstructionMix(0.40, 0.15, 0.35, 0.10, ipc=1.70),
    "<toplevel>": InstructionMix(0.45, 0.05, 0.30, 0.20, ipc=1.45),
}


def kernel_cost(name: str) -> int:
    """Return the cycle cost per unit of work for kernel ``name``."""
    return KERNEL_CYCLES[name]


def mix_for_scope(scope: str) -> InstructionMix:
    """Return the instruction mix for a profiling scope (longest prefix)."""
    best: str | None = None
    for prefix in SCOPE_MIX:
        if scope.startswith(prefix) and (best is None or len(prefix) > len(best)):
            best = prefix
    if best is None:
        best = "<toplevel>"
    return SCOPE_MIX[best]
