"""Execution-profile reporting (paper Fig. 8).

The paper profiles the VS binary with Linux ``perf`` and groups time by
function: ~68% in OpenCV library code, with ``WarpPerspectiveInvoker``
alone at 54.4%.  Here the cost profile's fine-grained scopes are grouped
into the same kind of display buckets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.context import CostProfile

#: Display buckets in the style of the paper's Fig. 8; scopes are
#: matched by the longest prefix.  Buckets whose names come from OpenCV
#: in the paper are flagged as library code.
PROFILE_BUCKETS: dict[str, tuple[str, bool]] = {
    "imaging.warp.warp_perspective_invoker": ("warpPerspectiveInvoker", True),
    "imaging.warp.remap_bilinear": ("remapBilinear", True),
    "imaging.filters": ("cv::filters (blur/gradients)", True),
    "imaging.color": ("cv::cvtColor", True),
    "vision.fast": ("cv::FAST", True),
    "vision.orb": ("cv::ORB descriptors", True),
    "vision.matching": ("cv::BFMatcher (Hamming)", True),
    "vision.ransac": ("cv::findHomography (RANSAC)", True),
    "summarize": ("VS application code", False),
    "<toplevel>": ("VS application code", False),
}


@dataclass
class ProfileLine:
    """One row of the Fig. 8-style profile."""

    bucket: str
    is_library: bool
    cycles: int
    fraction: float


def bucket_for_scope(scope: str) -> tuple[str, bool]:
    """Map a fine-grained profiling scope to its display bucket."""
    best: str | None = None
    for prefix in PROFILE_BUCKETS:
        if scope.startswith(prefix) and (best is None or len(prefix) > len(best)):
            best = prefix
    if best is None:
        return "VS application code", False
    return PROFILE_BUCKETS[best]


def execution_profile(profile: CostProfile) -> list[ProfileLine]:
    """Aggregate a run's cost profile into Fig. 8-style lines, sorted."""
    total = profile.total_cycles
    grouped: dict[tuple[str, bool], int] = {}
    for scope, cycles in profile.by_scope().items():
        key = bucket_for_scope(scope)
        grouped[key] = grouped.get(key, 0) + cycles
    lines = [
        ProfileLine(bucket=name, is_library=is_lib, cycles=cycles, fraction=cycles / total)
        for (name, is_lib), cycles in grouped.items()
    ]
    lines.sort(key=lambda line: -line.cycles)
    return lines


def library_fraction(profile: CostProfile) -> float:
    """Fraction of cycles spent in (modelled) library code (~68% in Fig. 8)."""
    lines = execution_profile(profile)
    return sum(line.fraction for line in lines if line.is_library)


def hot_function_fraction(profile: CostProfile) -> float:
    """Fraction of cycles in the hot warp function (54.4% in Fig. 8)."""
    lines = execution_profile(profile)
    return sum(
        line.fraction
        for line in lines
        if line.bucket in ("warpPerspectiveInvoker", "remapBilinear")
    )
