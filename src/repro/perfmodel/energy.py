"""IPC, execution-time and energy estimates (paper Fig. 5).

The paper measures IPC, execution time and energy on an IBM POWER8
server and reports values *normalized to the baseline VS* per input.
This module derives the same three quantities from the cycle profile:

* instructions = sum over scopes of ``cycles(scope) * ipc(scope)``,
* IPC = instructions / cycles (roughly constant across the algorithm
  variants, as the paper observes, because the instruction mix barely
  changes),
* time = cycles / clock frequency,
* power = static + dynamic-per-IPC * IPC, energy = power * time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.cost import mix_for_scope
from repro.runtime.context import CostProfile

#: Modelled core clock (Hz); POWER8 shipped at ~3.5 GHz.
CLOCK_HZ = 3.5e9

#: Static (leakage + uncore share) power of the modelled core, watts.
STATIC_POWER_W = 8.0

#: Dynamic power per unit of IPC, watts.
DYNAMIC_POWER_PER_IPC_W = 14.0


def cycles_to_seconds(cycles: int) -> float:
    """Modelled wall time of ``cycles`` on the simulated machine.

    Used by the telemetry layer to show a modelled-time column next to
    measured wall time in ``repro trace summarize``.
    """
    return cycles / CLOCK_HZ


@dataclass(frozen=True)
class PerfEstimate:
    """Performance/energy summary of one run."""

    cycles: int
    instructions: float
    ipc: float
    time_s: float
    power_w: float
    energy_j: float

    def normalized_to(self, baseline: "PerfEstimate") -> dict[str, float]:
        """IPC / time / energy relative to a baseline estimate (Fig. 5)."""
        return {
            "ipc": self.ipc / baseline.ipc,
            "time": self.time_s / baseline.time_s,
            "energy": self.energy_j / baseline.energy_j,
        }


def estimate_from_profile(profile: CostProfile) -> PerfEstimate:
    """Derive the performance/energy estimate from a run's cost profile."""
    cycles = profile.total_cycles
    if cycles == 0:
        raise ValueError("profile is empty; run the workload with a profile attached")
    instructions = 0.0
    for scope, scope_cycles in profile.by_scope().items():
        instructions += scope_cycles * mix_for_scope(scope).ipc
    ipc = instructions / cycles
    time_s = cycles / CLOCK_HZ
    power_w = STATIC_POWER_W + DYNAMIC_POWER_PER_IPC_W * ipc
    return PerfEstimate(
        cycles=cycles,
        instructions=instructions,
        ipc=ipc,
        time_s=time_s,
        power_w=power_w,
        energy_j=power_w * time_s,
    )
