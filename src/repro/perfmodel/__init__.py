"""Performance and energy model (cycles, IPC, energy, profiles)."""

from repro.perfmodel.cost import KERNEL_CYCLES, InstructionMix, kernel_cost, mix_for_scope
from repro.perfmodel.energy import (
    CLOCK_HZ,
    DYNAMIC_POWER_PER_IPC_W,
    STATIC_POWER_W,
    PerfEstimate,
    estimate_from_profile,
)
from repro.perfmodel.profile import (
    PROFILE_BUCKETS,
    ProfileLine,
    bucket_for_scope,
    execution_profile,
    hot_function_fraction,
    library_fraction,
)

__all__ = [
    "KERNEL_CYCLES",
    "InstructionMix",
    "kernel_cost",
    "mix_for_scope",
    "PerfEstimate",
    "estimate_from_profile",
    "CLOCK_HZ",
    "STATIC_POWER_W",
    "DYNAMIC_POWER_PER_IPC_W",
    "ProfileLine",
    "PROFILE_BUCKETS",
    "bucket_for_scope",
    "execution_profile",
    "library_fraction",
    "hot_function_fraction",
]
