"""The paper's SDC quality metric (Section V-D).

Given a golden output image and a faulty one, the metric:

1. applies global corrective transformations (shape reconciliation,
   illumination gain, translation alignment — see
   :mod:`repro.quality.align`),
2. takes the pixel-by-pixel difference,
3. keeps only differences greater than 128 (over half the 8-bit range;
   small color-grade deviations are tolerable for a human analyst),
4. computes ``relative_l2_norm = ||pixel_128_diff||_2 / ||golden||_2 * 100``,
5. floors the result into an integer *Egregiousness Degree* (ED).

SDCs with ``relative_l2_norm > 100%`` get no ED and are classified as
*egregious* — they must be protected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Pixel differences at or below this value are tolerable color-grade
#: deviations and do not count toward the metric.
PIXEL_DIFF_THRESHOLD = 128

#: relative_l2_norm above this marks an SDC as egregious (no ED).
EGREGIOUS_LIMIT = 100.0


@dataclass(frozen=True)
class SDCQuality:
    """Quality assessment of one corrupted output."""

    relative_l2_norm: float
    egregious_degree: int | None  # None when the SDC is egregious

    @property
    def egregious(self) -> bool:
        """True when the SDC exceeds the metric's range and must be protected."""
        return self.egregious_degree is None


def l2_norm(image: np.ndarray) -> float:
    """Euclidean norm over all pixels of an image."""
    arr = np.asarray(image, dtype=np.float64)
    return float(np.sqrt((arr * arr).sum()))


def pixel_diff(golden: np.ndarray, faulty: np.ndarray) -> np.ndarray:
    """Absolute per-pixel difference of two same-shape uint8 images."""
    g = np.asarray(golden)
    f = np.asarray(faulty)
    if g.shape != f.shape:
        raise ValueError(f"shape mismatch: golden {g.shape} vs faulty {f.shape}")
    return np.abs(g.astype(np.int16) - f.astype(np.int16)).astype(np.uint8)


def pixel_128_diff(golden: np.ndarray, faulty: np.ndarray) -> np.ndarray:
    """Difference image keeping only deviations above the 128 threshold."""
    diff = pixel_diff(golden, faulty)
    return np.where(diff > PIXEL_DIFF_THRESHOLD, diff, 0).astype(np.uint8)


def relative_l2_norm(golden: np.ndarray, faulty: np.ndarray) -> float:
    """The paper's deviation percentage between aligned golden/faulty images."""
    golden_norm = l2_norm(golden)
    if golden_norm == 0.0:
        # A blank golden image: any nonzero faulty content is infinitely
        # worse; identical blanks deviate by zero.
        return 0.0 if l2_norm(faulty) == 0.0 else float("inf")
    return l2_norm(pixel_128_diff(golden, faulty)) / golden_norm * 100.0


def egregiousness_degree(rel_l2: float) -> int | None:
    """ED = floor(relative_l2_norm); ``None`` above the egregious limit."""
    if rel_l2 > EGREGIOUS_LIMIT or math.isinf(rel_l2) or math.isnan(rel_l2):
        return None
    return int(math.floor(rel_l2))


def assess_sdc(golden_aligned: np.ndarray, faulty_aligned: np.ndarray) -> SDCQuality:
    """Assess an SDC given *already aligned* golden/faulty images."""
    rel = relative_l2_norm(golden_aligned, faulty_aligned)
    return SDCQuality(relative_l2_norm=rel, egregious_degree=egregiousness_degree(rel))
