"""Global corrective alignment before image comparison.

The paper's metric first applies "global transformations to ensure that
differences due to perspective, lighting, camera angle etc. are removed"
(Section V-D) because the output is consumed by a human analyst who does
not care about cosmetic global shifts.

The corrective pipeline implemented here:

1. **Shape reconciliation** — outputs may differ in size (for example a
   different number of mini-panoramas); both images are padded to the
   common bounding shape.
2. **Illumination correction** — a global gain matches the faulty
   image's mean intensity (over jointly nonzero pixels) to the golden's.
3. **Translation alignment** — a coarse-to-fine integer-shift search
   minimizes the thresholded difference energy, removing global shifts.
"""

from __future__ import annotations

import numpy as np

from repro.imaging.image import saturate_cast_u8

#: Maximum translation (pixels, each axis) the aligner searches.
MAX_SHIFT = 24

#: Downsampling factor of the coarse search pass.
_COARSE_FACTOR = 4


def pad_to_common(first: np.ndarray, second: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Zero-pad two grayscale images to their common bounding shape."""
    height = max(first.shape[0], second.shape[0])
    width = max(first.shape[1], second.shape[1])

    def pad(image: np.ndarray) -> np.ndarray:
        out = np.zeros((height, width), dtype=np.uint8)
        out[: image.shape[0], : image.shape[1]] = image
        return out

    return pad(first), pad(second)


def gain_correct(golden: np.ndarray, faulty: np.ndarray) -> np.ndarray:
    """Scale the faulty image so its mean matches the golden's.

    Only pixels nonzero in both images participate in the estimate, so
    blank canvas regions do not bias the gain.
    """
    joint = (golden > 0) & (faulty > 0)
    if not np.any(joint):
        return faulty.copy()
    golden_mean = float(golden[joint].mean())
    faulty_mean = float(faulty[joint].mean())
    if faulty_mean < 1e-9:
        return faulty.copy()
    gain = golden_mean / faulty_mean
    if abs(gain - 1.0) < 1e-3:
        return faulty.copy()
    return saturate_cast_u8(faulty.astype(np.float64) * gain)


def _shift(image: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Shift an image by integer offsets with zero fill."""
    out = np.zeros_like(image)
    h, w = image.shape
    src_y0, src_y1 = max(0, -dy), min(h, h - dy)
    src_x0, src_x1 = max(0, -dx), min(w, w - dx)
    dst_y0, dst_y1 = max(0, dy), min(h, h + dy)
    dst_x0, dst_x1 = max(0, dx), min(w, w + dx)
    out[dst_y0:dst_y1, dst_x0:dst_x1] = image[src_y0:src_y1, src_x0:src_x1]
    return out


def _diff_energy(golden: np.ndarray, candidate: np.ndarray) -> float:
    """Thresholded squared-difference energy (the quantity the metric uses)."""
    diff = np.abs(golden.astype(np.int16) - candidate.astype(np.int16))
    over = np.where(diff > 128, diff, 0).astype(np.float64)
    return float((over * over).sum())


def best_translation(golden: np.ndarray, faulty: np.ndarray, max_shift: int = MAX_SHIFT) -> tuple[int, int]:
    """Find the integer ``(dy, dx)`` minimizing thresholded difference energy.

    Coarse-to-fine: a search on 4x-downsampled images proposes the
    neighbourhood, then a fine search refines within it.
    """
    factor = _COARSE_FACTOR
    coarse_g = golden[::factor, ::factor]
    coarse_f = faulty[::factor, ::factor]
    coarse_limit = max_shift // factor
    best = (0, 0)
    best_energy = _diff_energy(coarse_g, coarse_f)
    for dy in range(-coarse_limit, coarse_limit + 1):
        for dx in range(-coarse_limit, coarse_limit + 1):
            energy = _diff_energy(coarse_g, _shift(coarse_f, dy, dx))
            if energy < best_energy:
                best_energy = energy
                best = (dy, dx)

    center_y, center_x = best[0] * factor, best[1] * factor
    best_fine = (center_y, center_x)
    best_energy = _diff_energy(golden, _shift(faulty, center_y, center_x))
    for dy in range(center_y - factor, center_y + factor + 1):
        for dx in range(center_x - factor, center_x + factor + 1):
            if abs(dy) > max_shift or abs(dx) > max_shift:
                continue
            energy = _diff_energy(golden, _shift(faulty, dy, dx))
            if energy < best_energy:
                best_energy = energy
                best_fine = (dy, dx)
    return best_fine


def align_for_comparison(golden: np.ndarray, faulty: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Full corrective alignment; returns comparable (golden, faulty)."""
    golden_padded, faulty_padded = pad_to_common(golden, faulty)
    corrected = gain_correct(golden_padded, faulty_padded)
    dy, dx = best_translation(golden_padded, corrected)
    if (dy, dx) != (0, 0):
        corrected = _shift(corrected, dy, dx)
    return golden_padded, corrected
