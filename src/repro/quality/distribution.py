"""ED distribution curves (paper Fig. 12).

Each curve shows, for an ED value on the X axis, the percentage of SDCs
whose ED is less than or equal to it.  Curves may top out below 100%
because egregious SDCs (relative_l2_norm > 100%) carry no ED.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quality.metrics import SDCQuality


@dataclass
class EDCurve:
    """Cumulative ED distribution of one algorithm's SDC population."""

    label: str
    eds: np.ndarray  # sorted ED values of non-egregious SDCs
    total_sdcs: int  # including egregious ones

    @property
    def egregious_count(self) -> int:
        """SDCs too corrupt for an ED."""
        return self.total_sdcs - int(self.eds.size)

    def fraction_at_or_below(self, ed: int) -> float:
        """Percentage (0..100) of all SDCs with ED <= ``ed``."""
        if self.total_sdcs == 0:
            return 0.0
        covered = int(np.searchsorted(self.eds, ed, side="right"))
        return 100.0 * covered / self.total_sdcs

    def curve(self, max_ed: int = 100) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(ed_axis, percent_axis)`` for plotting."""
        xs = np.arange(0, max_ed + 1)
        ys = np.array([self.fraction_at_or_below(int(x)) for x in xs])
        return xs, ys

    def ed_at_fraction(self, percent: float) -> int | None:
        """Smallest ED covering at least ``percent`` of SDCs (None if never)."""
        if self.total_sdcs == 0:
            return None
        needed = percent / 100.0 * self.total_sdcs
        if self.eds.size < needed:
            return None
        index = int(np.ceil(needed)) - 1
        return int(self.eds[index])


def build_curve(label: str, qualities: list[SDCQuality]) -> EDCurve:
    """Build the ED CDF from per-SDC quality assessments."""
    eds = np.sort(
        np.array(
            [q.egregious_degree for q in qualities if q.egregious_degree is not None],
            dtype=np.int64,
        )
    )
    return EDCurve(label=label, eds=eds, total_sdcs=len(qualities))
