"""SDC quality metric: alignment, relative L2 norm, ED distributions."""

from repro.quality.align import (
    align_for_comparison,
    best_translation,
    gain_correct,
    pad_to_common,
)
from repro.quality.distribution import EDCurve, build_curve
from repro.quality.metrics import (
    EGREGIOUS_LIMIT,
    PIXEL_DIFF_THRESHOLD,
    SDCQuality,
    assess_sdc,
    egregiousness_degree,
    l2_norm,
    pixel_128_diff,
    pixel_diff,
    relative_l2_norm,
)


def compare_outputs(golden, faulty) -> SDCQuality:
    """Align two outputs and assess the deviation (the full paper metric)."""
    golden_aligned, faulty_aligned = align_for_comparison(golden, faulty)
    return assess_sdc(golden_aligned, faulty_aligned)


__all__ = [
    "align_for_comparison",
    "best_translation",
    "gain_correct",
    "pad_to_common",
    "EDCurve",
    "build_curve",
    "SDCQuality",
    "assess_sdc",
    "egregiousness_degree",
    "l2_norm",
    "pixel_diff",
    "pixel_128_diff",
    "relative_l2_norm",
    "PIXEL_DIFF_THRESHOLD",
    "EGREGIOUS_LIMIT",
    "compare_outputs",
]
