"""Execution context: the simulated machine every kernel runs on.

All kernels in this library are written against an :class:`ExecutionContext`.
The context plays three roles:

1. **Cycle accounting** — kernels charge an analytic cycle cost for the work
   they perform (`tick`).  The accumulated count drives the performance and
   energy model (paper Fig. 5) and the per-function execution profile
   (paper Fig. 8).
2. **Watchdog** — when a cycle budget is set, exceeding it raises
   :class:`~repro.runtime.errors.HangDetected`.  This is how the fault
   monitor detects the *Hang* outcome.
3. **Fault-injection hook** — kernels expose their live architectural state
   at *checkpoints*.  When an injector is armed, the checkpoint gives it a
   chance to flip one bit in one register (paper Section V-B).

A context with no injector and no watchdog is extremely cheap: `tick` is an
integer addition and `window()` returns ``None`` so kernels skip building
register windows entirely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.runtime.errors import HangDetected

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faultinject.injector import FaultInjector
    from repro.faultinject.registers import RegisterWindow


class Cell:
    """A mutable scalar holder.

    Loop state that must remain corruptible *after* a checkpoint returns is
    kept in a ``Cell`` rather than a local variable, so a register-file bit
    flip can rewrite it and the kernel observes the new value on its next
    read.  This models an architectural register that the program keeps
    re-reading (for example a loop bound held in a register).
    """

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cell({self.value!r})"


class CostProfile:
    """Per-scope cycle accumulator (the analog of a flat ``perf`` profile)."""

    def __init__(self) -> None:
        self._cycles: dict[str, int] = {}

    def charge(self, scope: str, cycles: int) -> None:
        """Attribute ``cycles`` to ``scope``."""
        self._cycles[scope] = self._cycles.get(scope, 0) + cycles

    @property
    def total_cycles(self) -> int:
        """Total cycles across all scopes."""
        return sum(self._cycles.values())

    def fractions(self) -> dict[str, float]:
        """Return the fraction of total cycles spent in each scope."""
        total = self.total_cycles
        if total == 0:
            return {}
        return {name: cycles / total for name, cycles in self._cycles.items()}

    def by_scope(self) -> dict[str, int]:
        """Return a copy of the raw per-scope cycle counts."""
        return dict(self._cycles)

    def merged(self, mapping) -> dict[str, int]:
        """Aggregate scopes through ``mapping(scope_name) -> group_name``."""
        grouped: dict[str, int] = {}
        for name, cycles in self._cycles.items():
            group = mapping(name)
            grouped[group] = grouped.get(group, 0) + cycles
        return grouped


class _ScopeGuard:
    """Context manager pushing a profile scope (see ExecutionContext.scope)."""

    __slots__ = ("_ctx", "_name")

    def __init__(self, ctx: "ExecutionContext", name: str) -> None:
        self._ctx = ctx
        self._name = name

    def __enter__(self) -> None:
        self._ctx._scopes.append(self._name)

    def __exit__(self, exc_type, exc, tb) -> None:
        self._ctx._scopes.pop()


class ExecutionContext:
    """The simulated machine: cycle counter, watchdog and injection hook."""

    def __init__(
        self,
        injector: Optional["FaultInjector"] = None,
        watchdog_cycles: Optional[int] = None,
        profile: Optional[CostProfile] = None,
    ) -> None:
        self.cycles = 0
        self.injector = injector
        self.watchdog_cycles = watchdog_cycles
        self.profile = profile
        self._scopes: list[str] = []

    # ------------------------------------------------------------------
    # Cycle accounting
    # ------------------------------------------------------------------
    def tick(self, cycles: int) -> None:
        """Charge ``cycles`` of simulated work to the current scope."""
        self.cycles += cycles
        if self.profile is not None:
            scope = self._scopes[-1] if self._scopes else "<toplevel>"
            self.profile.charge(scope, cycles)
        if self.watchdog_cycles is not None and self.cycles > self.watchdog_cycles:
            raise HangDetected(self.cycles, self.watchdog_cycles)

    def preload(self, cycles: int, by_scope: Optional[dict] = None) -> None:
        """Pre-charge already-accounted work onto a fresh context.

        Used by golden-prefix fast-forward: a restored mid-run context
        must report the same cycle count (and, when profiling, the same
        per-scope attribution) as if the skipped prefix had executed.
        Unlike :meth:`tick` this never trips the watchdog — the replayed
        prefix comes from the golden run, which by definition finished.
        """
        self.cycles = int(cycles)
        if self.profile is not None and by_scope:
            for scope, amount in by_scope.items():
                self.profile.charge(scope, int(amount))

    def scope(self, name: str) -> _ScopeGuard:
        """Enter a named profiling scope (``with ctx.scope("warp"): ...``)."""
        return _ScopeGuard(self, name)

    @property
    def current_scope(self) -> str:
        """Name of the innermost active scope."""
        return self._scopes[-1] if self._scopes else "<toplevel>"

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    @property
    def armed(self) -> bool:
        """True when an injector wants to observe checkpoints."""
        return self.injector is not None and self.injector.observing

    def window(self, site: str) -> Optional["RegisterWindow"]:
        """Return a fresh register window for ``site``, or ``None``.

        Kernels use this as a cheap guard::

            w = ctx.window("warp.row")
            if w is not None:
                w.address("src_ptr", ...)
                ctx.checkpoint(w)
        """
        if not self.armed:
            return None
        from repro.faultinject.registers import RegisterWindow

        return RegisterWindow(site)

    def checkpoint(self, window: "RegisterWindow") -> None:
        """Expose ``window`` to the armed injector (no-op otherwise)."""
        if self.injector is not None:
            self.injector.visit(self, window)


def fresh_context() -> ExecutionContext:
    """Return a plain context (no injector, no watchdog, no profile)."""
    return ExecutionContext()
