"""Exception taxonomy for the simulated machine.

The fault-injection experiments classify run outcomes by the kind of
exception that terminated them, mirroring the signal taxonomy observed by
the paper's AFI Fault Monitor (SIGSEGV, abort, watchdog-detected hangs).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library itself."""


class SimulatedMachineError(ReproError):
    """Base class for errors that model a machine-level failure.

    These are the errors a fault-injection campaign counts as *Crash* or
    *Hang* outcomes, as opposed to genuine bugs in the library.
    """


class SegmentationFault(SimulatedMachineError):
    """A corrupted pointer resolved outside the simulated address space.

    Models the SIGSEGV crashes that dominate the paper's GPR Crash
    outcomes (92% of crashes in Section VI-A).
    """

    def __init__(self, address: int, message: str = "") -> None:
        self.address = address
        detail = message or f"access to unmapped address {address:#x}"
        super().__init__(detail)


class InternalAbortError(SimulatedMachineError):
    """A library-internal constraint violation (the paper's "Abort" crashes).

    Raised when corrupted state reaches a precondition check inside a
    solver or kernel, mirroring abort signals raised by OpenCV internals
    (8% of crashes in Section VI-A).
    """


class HangDetected(SimulatedMachineError):
    """The cycle watchdog expired: execution exceeded its cycle budget.

    Models the *Hang* outcome: corrupted control state (for example a
    loop bound) made the program neither finish nor crash.
    """

    def __init__(self, cycles: int, budget: int) -> None:
        self.cycles = cycles
        self.budget = budget
        super().__init__(f"watchdog expired: {cycles} cycles > budget {budget}")


class InsufficientMatchesError(ReproError):
    """Not enough point correspondences to estimate a transform.

    This is an *expected* application-level condition (the pipeline
    discards the frame), not a machine failure.
    """


class DegenerateModelError(ReproError):
    """A transform estimation produced a numerically unusable model."""
