"""Runtime substrate: the simulated machine all kernels execute on."""

from repro.runtime.context import Cell, CostProfile, ExecutionContext, fresh_context
from repro.runtime.errors import (
    DegenerateModelError,
    HangDetected,
    InsufficientMatchesError,
    InternalAbortError,
    ReproError,
    SegmentationFault,
    SimulatedMachineError,
)

__all__ = [
    "Cell",
    "CostProfile",
    "ExecutionContext",
    "fresh_context",
    "ReproError",
    "SimulatedMachineError",
    "SegmentationFault",
    "InternalAbortError",
    "HangDetected",
    "InsufficientMatchesError",
    "DegenerateModelError",
]
