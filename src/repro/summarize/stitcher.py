"""Pairwise transform estimation and mini-panorama compositing.

Implements the stitching core of the VS algorithm (paper Section III-A):
match key points between the incoming frame and the last accepted frame,
compute a homography via RANSAC, fall back to an affine estimate when
there are not enough matching key points, and discard the frame when even
that fails.  Accepted frames are warped into the mini-panorama canvas
through the chained transform that aligns every frame with the anchor
(first) frame of its segment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.forensics import probes
from repro.imaging.geometry import translation, validate_homography
from repro.imaging.image import blank
from repro.imaging.warp import warp_into
from repro.perfmodel.cost import kernel_cost
from repro.runtime.context import ExecutionContext
from repro.runtime.errors import DegenerateModelError, InsufficientMatchesError
from repro.summarize.config import VSConfig
from repro.vision.matching import MatchSet, match_ratio, match_simple
from repro.vision.orb import FeatureSet
from repro.vision.ransac import RansacResult, ransac_affine, ransac_homography

#: Acceptable singular-value range for the upper 2x2 of a chained
#: transform; outside it the frame alignment has degenerated.
_SCALE_RANGE = (0.25, 4.0)


@dataclass
class PairwiseTransform:
    """Estimated frame-to-frame alignment."""

    transform: np.ndarray  # (3, 3), maps current-frame coords to previous-frame coords
    model_type: str  # "homography" or "affine"
    num_matches: int
    num_inliers: int


def matching_subset(features: FeatureSet, fraction: float) -> np.ndarray:
    """Indices of the key points used for matching (the VS_KDS knob).

    The subset is a deterministic stride over the rank-ordered key
    points, so golden and fault-injected runs match the same subset.
    """
    n = len(features)
    if fraction >= 1.0 or n == 0:
        return np.arange(n, dtype=np.int64)
    stride = max(1, int(round(1.0 / fraction)))
    return np.arange(0, n, stride, dtype=np.int64)


def match_features(
    current: FeatureSet,
    previous: FeatureSet,
    config: VSConfig,
    ctx: ExecutionContext,
) -> tuple[MatchSet, np.ndarray, np.ndarray]:
    """Match current against previous features under the config's policy.

    Returns ``(matches, current_subset, previous_subset)`` where the
    subsets map matcher indices back to full key-point indices.
    """
    # VS_KDS subsamples the *incoming* frame's key points: matching cost
    # scales with the fraction, and every subsampled key point can still
    # find its counterpart in the previous frame.  (Striding both sides
    # would square the reduction and starve the matcher.)
    cur_subset = matching_subset(current, config.keypoint_fraction)
    prev_subset = matching_subset(previous, 1.0)
    cur_desc = current.descriptors[cur_subset]
    prev_desc = previous.descriptors[prev_subset]
    if config.matcher == "simple":
        matches = match_simple(cur_desc, prev_desc, ctx, max_distance=config.sm_max_distance)
    else:
        matches = match_ratio(cur_desc, prev_desc, ctx, ratio=config.ratio)
    return matches, cur_subset, prev_subset


def _check_inlier_spread(
    points: np.ndarray,
    mask: np.ndarray,
    frame_shape: tuple[int, int],
    min_spread: float,
) -> None:
    """Reject models whose inliers cover too little of the frame.

    A transform supported only by matches confined to a narrow overlap
    strip extrapolates badly across the rest of the frame; stitching
    pipelines reject such models.  Raises
    :class:`InsufficientMatchesError` on failure.
    """
    if min_spread <= 0.0:
        return
    frame_h, frame_w = frame_shape
    inliers = points[mask]
    span_x = float(inliers[:, 0].max() - inliers[:, 0].min())
    span_y = float(inliers[:, 1].max() - inliers[:, 1].min())
    area_fraction = (span_x * span_y) / float(frame_w * frame_h)
    if area_fraction < min_spread:
        raise InsufficientMatchesError(
            f"inlier spread {span_x:.0f}x{span_y:.0f} covers "
            f"{area_fraction:.0%} of the frame (need {min_spread:.0%})"
        )


def estimate_pairwise(
    current: FeatureSet,
    previous: FeatureSet,
    config: VSConfig,
    ctx: ExecutionContext,
    rng: np.random.Generator,
    frame_shape: tuple[int, int],
) -> PairwiseTransform:
    """Estimate the transform aligning the current frame to the previous.

    Tries a RANSAC homography when there are enough matching key points;
    falls back to a robust affine otherwise; raises
    :class:`InsufficientMatchesError` when the frame must be discarded
    (too few matches, no consensus, or inliers confined to a sliver of
    the frame).
    """
    matches, cur_subset, prev_subset = match_features(current, previous, config, ctx)
    # Divergence probe: the match stage's output is the correspondence
    # set — recorded before the acceptance test, so "masked by the
    # ratio test" (identical matches despite corrupted descriptors) is
    # distinguishable from divergence introduced here.
    probes.record("match", matches.query_idx, matches.train_idx, matches.distance)
    if len(matches) < config.min_inliers_affine:
        raise InsufficientMatchesError(f"only {len(matches)} matches")

    src = current.coords[cur_subset[matches.query_idx]].astype(np.float64)
    dst = previous.coords[prev_subset[matches.train_idx]].astype(np.float64)

    if len(matches) >= config.homography_match_min:
        try:
            result: RansacResult = ransac_homography(
                src,
                dst,
                ctx,
                rng,
                inlier_threshold=config.ransac_threshold,
                max_iterations=config.ransac_max_iterations,
                min_inliers=config.min_inliers_homography,
            )
            _check_inlier_spread(
                src, result.inlier_mask, frame_shape, config.min_inlier_spread
            )
            probes.record("homography", result.model, "homography", result.num_inliers)
            return PairwiseTransform(
                transform=result.model,
                model_type="homography",
                num_matches=len(matches),
                num_inliers=result.num_inliers,
            )
        except InsufficientMatchesError:
            pass  # fall through to the simpler affine model

    result = ransac_affine(
        src,
        dst,
        ctx,
        rng,
        inlier_threshold=config.ransac_threshold,
        min_inliers=config.min_inliers_affine,
    )
    _check_inlier_spread(src, result.inlier_mask, frame_shape, config.min_inlier_spread)

    probes.record("homography", result.model, "affine", result.num_inliers)
    return PairwiseTransform(
        transform=result.model,
        model_type="affine",
        num_matches=len(matches),
        num_inliers=result.num_inliers,
    )


class MiniPanorama:
    """One coverage segment: frames aligned to the segment's anchor frame.

    The canvas has a fixed size (``canvas_scale`` times the frame size)
    so that run outputs are directly comparable image-for-image.
    """

    def __init__(self, frame_shape: tuple[int, int], config: VSConfig) -> None:
        frame_h, frame_w = frame_shape
        self.canvas_h = int(frame_h * config.canvas_scale)
        self.canvas_w = int(frame_w * config.canvas_scale)
        self.canvas = blank(self.canvas_h, self.canvas_w)
        self.coverage = blank(self.canvas_h, self.canvas_w)
        # The anchor frame sits at the canvas centre.
        self.anchor_transform = translation(
            (self.canvas_w - frame_w) / 2.0, (self.canvas_h - frame_h) / 2.0
        )
        self.frames_composited = 0

    def place_anchor(self, frame: np.ndarray, ctx: ExecutionContext) -> np.ndarray:
        """Composite the segment's first frame; returns its chain transform."""
        self._composite(frame, self.anchor_transform, ctx)
        return self.anchor_transform

    def add(self, frame: np.ndarray, chain_transform: np.ndarray, ctx: ExecutionContext) -> None:
        """Composite a frame whose chain transform is already validated."""
        self._composite(frame, chain_transform, ctx)

    def _composite(self, frame: np.ndarray, transform: np.ndarray, ctx: ExecutionContext) -> None:
        with telemetry.span("summarize.stitch", ctx=ctx):
            with ctx.scope("summarize.stitcher.composite"):
                written = warp_into(self.canvas, self.coverage, frame, transform, ctx)
                ctx.tick(kernel_cost("composite.px") * max(written, 1))
        # Divergence probe: the warp stage's output is the canvas state
        # after compositing this frame (coverage included, so a warp
        # that paints the same pixels through a different footprint
        # still registers).
        probes.record("warp", self.canvas, self.coverage, written)
        self.frames_composited += 1

    def validate_chain(self, transform: np.ndarray, frame_shape: tuple[int, int]) -> np.ndarray:
        """Sanity-check a chained transform against this canvas.

        Raises :class:`InsufficientMatchesError` when the chain has
        drifted into a useless regime (extreme scale, or the frame
        centre projecting outside the canvas), which the pipeline treats
        the same as a failed match.
        """
        try:
            model = validate_homography(transform)
        except DegenerateModelError as exc:
            raise InsufficientMatchesError(f"degenerate chain transform: {exc}") from exc
        singular_values = np.linalg.svd(model[:2, :2], compute_uv=False)
        if singular_values[0] > _SCALE_RANGE[1] or singular_values[-1] < _SCALE_RANGE[0]:
            raise InsufficientMatchesError(
                f"chain scale {singular_values} outside {_SCALE_RANGE}"
            )
        frame_h, frame_w = frame_shape
        center = np.array([[frame_w / 2.0, frame_h / 2.0]])
        homo = np.hstack([center, np.ones((1, 1))]) @ model.T
        if abs(homo[0, 2]) < 1e-12:
            raise InsufficientMatchesError("frame centre projects to infinity")
        cx, cy = homo[0, 0] / homo[0, 2], homo[0, 1] / homo[0, 2]
        if not (0 <= cx < self.canvas_w and 0 <= cy < self.canvas_h):
            raise InsufficientMatchesError("frame centre left the canvas")
        return model

    def cropped(self) -> np.ndarray:
        """The canvas cropped to its covered bounding box (for display)."""
        ys, xs = np.nonzero(self.coverage)
        if ys.size == 0:
            return self.canvas[:1, :1].copy()
        return self.canvas[ys.min() : ys.max() + 1, xs.min() : xs.max() + 1].copy()

    @property
    def coverage_fraction(self) -> float:
        """Fraction of canvas pixels covered by at least one frame."""
        return float(np.count_nonzero(self.coverage)) / self.coverage.size
