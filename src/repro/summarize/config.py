"""Configuration of the VS application and its approximation knobs.

One :class:`VSConfig` fully determines the algorithm: the baseline VS and
the three approximations (VS_RFD, VS_KDS, VS_SM) are all configurations
of the same pipeline, exactly as in the paper where the approximations
transform the baseline algorithm (Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class VSConfig:
    """All knobs of the video-summarization pipeline."""

    name: str = "VS"

    # Feature front end -------------------------------------------------
    n_keypoints: int = 150
    fast_threshold: int = 6

    # Matching -----------------------------------------------------------
    matcher: str = "ratio"  # "ratio" (baseline) or "simple" (VS_SM)
    ratio: float = 0.75
    sm_max_distance: int = 24  # absolute Hamming bound for VS_SM

    # Approximation knobs -------------------------------------------------
    drop_fraction: float = 0.0  # VS_RFD: fraction of input frames dropped
    keypoint_fraction: float = 1.0  # VS_KDS: fraction of key points matched
    approx_seed: int = 7  # seeds frame dropping / key point subsampling

    # Transform estimation -------------------------------------------------
    ransac_threshold: float = 3.0
    ransac_max_iterations: int = 512
    min_inliers_homography: int = 14
    min_inliers_affine: int = 8
    # Below this many matches the pipeline skips the homography and
    # estimates the simpler affine model directly (paper Section III-A:
    # "not every pair of adjacent frames has enough matching key points
    # to compute the homography transformation").
    homography_match_min: int = 20
    # Minimum bounding-box area of the inlier set, as a fraction of the
    # frame area.  Models estimated from matches confined to a narrow
    # overlap strip extrapolate badly and are rejected (standard
    # stitching-pipeline coverage check).
    min_inlier_spread: float = 0.17

    # Compositing ----------------------------------------------------------
    canvas_scale: float = 3.0  # canvas size as a multiple of frame size
    max_consecutive_failures: int = 3  # failures before a new mini-panorama

    def __post_init__(self) -> None:
        if self.matcher not in ("ratio", "simple"):
            raise ValueError(f"unknown matcher {self.matcher!r}")
        if not 0.0 <= self.drop_fraction < 1.0:
            raise ValueError(f"drop_fraction must be in [0, 1), got {self.drop_fraction}")
        if not 0.0 < self.keypoint_fraction <= 1.0:
            raise ValueError(
                f"keypoint_fraction must be in (0, 1], got {self.keypoint_fraction}"
            )
        if self.canvas_scale < 1.0:
            raise ValueError(f"canvas_scale must be >= 1, got {self.canvas_scale}")

    def with_name(self, name: str) -> "VSConfig":
        """Return a copy of this config under a different display name."""
        return replace(self, name=name)
