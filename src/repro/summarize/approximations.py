"""The paper's three software approximations as configuration transforms.

Paper Section IV:

* **VS_RFD** (input sampling): randomly drop up to 10% of input frames.
* **VS_KDS** (selective computation): match only one-third of the key
  points; matching is O(n^2) in key points.
* **VS_SM** (algorithmic transformation): replace the 2-NN ratio test by
  a single-nearest-neighbour match with an absolute distance bound.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.summarize.config import VSConfig


def baseline_config(**overrides) -> VSConfig:
    """The precise VS algorithm."""
    return replace(VSConfig(name="VS"), **overrides)


def rfd_config(drop_fraction: float = 0.10, **overrides) -> VSConfig:
    """VS_RFD: random frame dropping (paper default 10%)."""
    return replace(VSConfig(name="VS_RFD", drop_fraction=drop_fraction), **overrides)


def kds_config(keypoint_fraction: float = 1.0 / 3.0, **overrides) -> VSConfig:
    """VS_KDS: key-point down-sampling (paper default one-third)."""
    return replace(VSConfig(name="VS_KDS", keypoint_fraction=keypoint_fraction), **overrides)


def sm_config(max_distance: int = 24, **overrides) -> VSConfig:
    """VS_SM: simple matching (1-NN with an absolute Hamming bound)."""
    return replace(
        VSConfig(name="VS_SM", matcher="simple", sm_max_distance=max_distance), **overrides
    )


#: All four algorithms in the paper's presentation order.
ALGORITHM_FACTORIES: dict[str, Callable[..., VSConfig]] = {
    "VS": baseline_config,
    "VS_RFD": rfd_config,
    "VS_KDS": kds_config,
    "VS_SM": sm_config,
}


def config_for(algorithm: str, **overrides) -> VSConfig:
    """Build the config for one of the paper's algorithm names."""
    try:
        factory = ALGORITHM_FACTORIES[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {sorted(ALGORITHM_FACTORIES)}"
        ) from None
    return factory(**overrides)
