"""The end-to-end VS application (coverage summarization).

Consumes a frame stream and produces the summarized output: every frame
is aligned to the anchor frame of its segment and composited into a
mini-panorama; the run's output image stacks the mini-panoramas (paper
Section III: segments are summarized by mini-panoramas that a later
stage combines into the global panorama).

This is the application under test in every experiment: the performance
model, the execution profile and the fault-injection campaigns all run
through :func:`run_vs`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.forensics import probes
from repro.perfmodel.cost import kernel_cost
from repro.runtime.context import Cell, ExecutionContext
from repro.runtime.errors import InsufficientMatchesError, SegmentationFault
from repro.summarize.config import VSConfig
from repro.summarize.stitcher import MiniPanorama, estimate_pairwise
from repro.video.frames import FrameStream, drop_frames_randomly
from repro.vision.orb import FeatureSet, orb_features


@dataclass
class FrameOutcome:
    """What happened to one input frame."""

    index: int  # index within the (post-RFD) processed stream
    status: str  # "anchor" | "stitched" | "discarded" | "dropped"
    model_type: str | None = None  # "homography" | "affine" for stitched frames
    num_matches: int = 0
    num_inliers: int = 0
    #: For anchor/stitched frames: the transform mapping this frame's
    #: pixel coordinates into its mini-panorama canvas, and which
    #: mini-panorama it belongs to.  Consumed by the event-summarization
    #: stage to project detections into panorama space.
    chain: np.ndarray | None = None
    mini_index: int = -1


@dataclass
class VSResult:
    """Everything a VS run produces."""

    config: VSConfig
    panorama: np.ndarray  # stacked mini-panorama canvases (the output image)
    minis: list[MiniPanorama] = field(default_factory=list)
    outcomes: list[FrameOutcome] = field(default_factory=list)
    cycles: int = 0

    @property
    def frames_stitched(self) -> int:
        """Frames composited into a panorama (anchors included)."""
        return sum(1 for o in self.outcomes if o.status in ("anchor", "stitched"))

    @property
    def frames_discarded(self) -> int:
        """Frames discarded for lack of matching key points."""
        return sum(1 for o in self.outcomes if o.status == "discarded")

    @property
    def affine_fallbacks(self) -> int:
        """Frames that needed the simpler affine model."""
        return sum(1 for o in self.outcomes if o.model_type == "affine")

    @property
    def num_minis(self) -> int:
        """Number of mini-panoramas generated."""
        return len(self.minis)


def _ransac_seed(config: VSConfig, stream_name: str) -> int:
    """Deterministic RANSAC seed per (algorithm, input)."""
    return zlib.crc32(f"{config.name}:{stream_name}:{config.approx_seed}".encode())


def run_vs(stream: FrameStream, config: VSConfig, ctx: ExecutionContext) -> VSResult:
    """Run the VS application over ``stream`` under ``config``.

    Deterministic: the same stream and config always produce the same
    output on a clean context.
    """
    with telemetry.span("summarize.run_vs", ctx=ctx):
        return _run_vs(stream, config, ctx)


def _run_vs(stream: FrameStream, config: VSConfig, ctx: ExecutionContext) -> VSResult:
    rng = np.random.default_rng(_ransac_seed(config, stream.name))

    if config.drop_fraction > 0.0:
        drop_rng = np.random.default_rng(config.approx_seed)
        stream = drop_frames_randomly(stream, config.drop_fraction, drop_rng)

    frames = list(stream)
    if not frames:
        return VSResult(config=config, panorama=np.zeros((1, 1), dtype=np.uint8))
    frame_shape = frames[0].shape

    minis: list[MiniPanorama] = []
    outcomes: list[FrameOutcome] = []
    current: MiniPanorama | None = None
    prev_features: FeatureSet | None = None
    prev_chain: np.ndarray | None = None
    failures = Cell(0)
    index = Cell(0)
    total = Cell(len(frames))
    frame_px = frame_shape[0] * frame_shape[1]

    while index.value < total.value:
        i = int(index.value)
        if i >= len(frames) or i < -len(frames):
            # A corrupted frame index walks off the frame table.
            raise SegmentationFault(i, "frame table overrun")
        # Negative in-range indices alias earlier frames (wrong data, no
        # trap).  The working copy is the in-memory frame buffer; pointer
        # corruption mutates it and the corruption flows downstream.
        frame = frames[i].copy()

        with ctx.scope("summarize.pipeline.frame"):
            ctx.tick(kernel_cost("frame.acquire_px") * frame_px)
            ctx.tick(kernel_cost("pipeline.frame_overhead"))

        window = ctx.window("summarize.pipeline.frame")
        if window is not None:
            from repro.faultinject.registers import Role

            window.gpr_address("frame_ptr", frame)
            window.gpr_cell("frame_idx", index, role=Role.CONTROL)
            window.gpr_cell("frame_total", total, role=Role.CONTROL)
            window.gpr_cell("fail_count", failures, role=Role.DATA)
            if current is not None:
                window.gpr_address("canvas_ptr", current.canvas, writes=True)
                window.gpr_address("coverage_ptr", current.coverage, writes=True)
            if prev_features is not None and len(prev_features):
                window.gpr_address("prev_desc_ptr", prev_features.descriptors)
                window.gpr_address("prev_coords_ptr", prev_features.coords)
            ctx.checkpoint(window)

        features = orb_features(
            frame,
            ctx,
            n_keypoints=config.n_keypoints,
            fast_threshold=config.fast_threshold,
        )

        if current is None or prev_features is None or prev_chain is None:
            current, prev_chain = _start_segment(frame, frame_shape, config, ctx, minis)
            prev_features = features
            outcomes.append(
                FrameOutcome(
                    index=i,
                    status="anchor",
                    chain=prev_chain.copy(),
                    mini_index=len(minis) - 1,
                )
            )
            failures.value = 0
            index.value = int(index.value) + 1
            continue

        try:
            pairwise = estimate_pairwise(features, prev_features, config, ctx, rng, frame_shape)
            chained = prev_chain @ pairwise.transform
            chained = current.validate_chain(chained, frame_shape)
        except InsufficientMatchesError:
            failures.value = int(failures.value) + 1
            # Library-internal invariant (the abort crash category):
            # the failure counter must stay within the frame budget.
            if not 0 < failures.value <= len(frames):
                from repro.runtime.errors import InternalAbortError

                raise InternalAbortError(
                    f"failure counter corrupted: {failures.value}"
                )
            outcomes.append(FrameOutcome(index=i, status="discarded"))
            if failures.value > config.max_consecutive_failures:
                # Scene change: anchor a fresh mini-panorama at this frame.
                current, prev_chain = _start_segment(frame, frame_shape, config, ctx, minis)
                prev_features = features
                outcomes[-1] = FrameOutcome(
                    index=i,
                    status="anchor",
                    chain=prev_chain.copy(),
                    mini_index=len(minis) - 1,
                )
                failures.value = 0
            index.value = int(index.value) + 1
            continue

        with ctx.scope("summarize.pipeline.chain"):
            ctx.tick(kernel_cost("pipeline.anchor_update"))
        current.add(frame, chained, ctx)
        prev_chain = chained
        prev_features = features
        failures.value = 0
        outcomes.append(
            FrameOutcome(
                index=i,
                status="stitched",
                model_type=pairwise.model_type,
                num_matches=pairwise.num_matches,
                num_inliers=pairwise.num_inliers,
                chain=chained.copy(),
                mini_index=len(minis) - 1,
            )
        )
        index.value = int(index.value) + 1

    panorama = _stack_minis(minis)
    # Divergence probe: the stitch stage's output is the full stacked
    # panorama — the same image the monitor classifies SDC against.
    probes.record("stitch", panorama)
    return VSResult(
        config=config,
        panorama=panorama,
        minis=minis,
        outcomes=outcomes,
        cycles=ctx.cycles,
    )


def _start_segment(
    frame: np.ndarray,
    frame_shape: tuple[int, int],
    config: VSConfig,
    ctx: ExecutionContext,
    minis: list[MiniPanorama],
) -> tuple[MiniPanorama, np.ndarray]:
    """Open a new mini-panorama anchored at ``frame``."""
    mini = MiniPanorama(frame_shape, config)
    chain = mini.place_anchor(frame, ctx)
    minis.append(mini)
    return mini, chain


def _stack_minis(minis: list[MiniPanorama]) -> np.ndarray:
    """The run's output image: mini-panorama canvases stacked vertically."""
    if not minis:
        return np.zeros((1, 1), dtype=np.uint8)
    return np.vstack([mini.canvas for mini in minis])
