"""The end-to-end VS application (coverage summarization).

Consumes a frame stream and produces the summarized output: every frame
is aligned to the anchor frame of its segment and composited into a
mini-panorama; the run's output image stacks the mini-panoramas (paper
Section III: segments are summarized by mini-panoramas that a later
stage combines into the global panorama).

This is the application under test in every experiment: the performance
model, the execution profile and the fault-injection campaigns all run
through :func:`run_vs`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.forensics import probes
from repro.perfmodel.cost import kernel_cost
from repro.runtime.context import Cell, ExecutionContext
from repro.runtime.errors import InsufficientMatchesError, SegmentationFault
from repro.summarize.config import VSConfig
from repro.summarize.stitcher import MiniPanorama, estimate_pairwise
from repro.video.frames import FrameStream, drop_frames_randomly
from repro.vision.orb import FeatureSet, orb_features


@dataclass
class FrameOutcome:
    """What happened to one input frame."""

    index: int  # index within the (post-RFD) processed stream
    status: str  # "anchor" | "stitched" | "discarded" | "dropped"
    model_type: str | None = None  # "homography" | "affine" for stitched frames
    num_matches: int = 0
    num_inliers: int = 0
    #: For anchor/stitched frames: the transform mapping this frame's
    #: pixel coordinates into its mini-panorama canvas, and which
    #: mini-panorama it belongs to.  Consumed by the event-summarization
    #: stage to project detections into panorama space.
    chain: np.ndarray | None = None
    mini_index: int = -1


@dataclass
class VSResult:
    """Everything a VS run produces."""

    config: VSConfig
    panorama: np.ndarray  # stacked mini-panorama canvases (the output image)
    minis: list[MiniPanorama] = field(default_factory=list)
    outcomes: list[FrameOutcome] = field(default_factory=list)
    cycles: int = 0

    @property
    def frames_stitched(self) -> int:
        """Frames composited into a panorama (anchors included)."""
        return sum(1 for o in self.outcomes if o.status in ("anchor", "stitched"))

    @property
    def frames_discarded(self) -> int:
        """Frames discarded for lack of matching key points."""
        return sum(1 for o in self.outcomes if o.status == "discarded")

    @property
    def affine_fallbacks(self) -> int:
        """Frames that needed the simpler affine model."""
        return sum(1 for o in self.outcomes if o.model_type == "affine")

    @property
    def num_minis(self) -> int:
        """Number of mini-panoramas generated."""
        return len(self.minis)


@dataclass
class PipelineState:
    """The complete mutable state of the VS frame loop between frames.

    This is the unit of restoration for golden-prefix fast-forward
    (:mod:`repro.faultinject.fastforward`): everything the loop body
    reads or writes across iterations lives here, so a run can be
    re-entered at any frame boundary from a snapshot.  The invariant
    ``current is minis[-1]`` (or ``None`` while ``minis`` is empty)
    holds at every boundary, so ``current`` is not stored separately by
    snapshots.
    """

    minis: list[MiniPanorama] = field(default_factory=list)
    outcomes: list[FrameOutcome] = field(default_factory=list)
    current: MiniPanorama | None = None
    prev_features: FeatureSet | None = None
    prev_chain: np.ndarray | None = None
    failures: Cell = field(default_factory=lambda: Cell(0))
    index: Cell = field(default_factory=lambda: Cell(0))
    total: Cell = field(default_factory=lambda: Cell(0))


def _ransac_seed(config: VSConfig, stream_name: str) -> int:
    """Deterministic RANSAC seed per (algorithm, input)."""
    return zlib.crc32(f"{config.name}:{stream_name}:{config.approx_seed}".encode())


def materialize_frames(
    stream: FrameStream, config: VSConfig
) -> tuple[list[np.ndarray], tuple[int, int] | None]:
    """The frame table the loop runs over (random frame drop applied).

    Deterministic per ``(stream, config)``; the returned frames are
    treated as read-only by the pipeline (each iteration works on a
    copy), which is what lets fast-forward share one materialized table
    across many resumed runs.
    """
    if config.drop_fraction > 0.0:
        drop_rng = np.random.default_rng(config.approx_seed)
        stream = drop_frames_randomly(stream, config.drop_fraction, drop_rng)
    frames = list(stream)
    if not frames:
        return [], None
    return frames, frames[0].shape


def run_vs(stream: FrameStream, config: VSConfig, ctx: ExecutionContext) -> VSResult:
    """Run the VS application over ``stream`` under ``config``.

    Deterministic: the same stream and config always produce the same
    output on a clean context.
    """
    with telemetry.span("summarize.run_vs", ctx=ctx):
        return _run_vs(stream, config, ctx)


def run_vs_resumed(
    config: VSConfig,
    ctx: ExecutionContext,
    state: PipelineState,
    rng: np.random.Generator,
    frames: list[np.ndarray],
    frame_shape: tuple[int, int],
) -> VSResult:
    """Re-enter the VS frame loop from a restored mid-run state.

    Fast-forward entry point: ``ctx`` must already be pre-charged with
    the skipped prefix's cycles (see ``ExecutionContext.preload``) and
    ``rng``/``state`` must come from a frame-boundary snapshot.  The
    suffix then executes exactly as it would have in a full run.
    """
    with telemetry.span("summarize.run_vs", ctx=ctx):
        return _run_loop(frames, frame_shape, config, ctx, rng, state)


def _run_vs(stream: FrameStream, config: VSConfig, ctx: ExecutionContext) -> VSResult:
    rng = np.random.default_rng(_ransac_seed(config, stream.name))
    frames, frame_shape = materialize_frames(stream, config)
    if not frames:
        return VSResult(config=config, panorama=np.zeros((1, 1), dtype=np.uint8))
    state = PipelineState(total=Cell(len(frames)))
    return _run_loop(frames, frame_shape, config, ctx, rng, state)


def _run_loop(
    frames: list[np.ndarray],
    frame_shape: tuple[int, int],
    config: VSConfig,
    ctx: ExecutionContext,
    rng: np.random.Generator,
    state: PipelineState,
) -> VSResult:
    frame_px = frame_shape[0] * frame_shape[1]
    failures, index, total = state.failures, state.index, state.total
    # Snapshot hook: the fast-forward recorder (a pseudo-injector, like
    # the census probe) exposes ``frame_boundary``; real injectors do
    # not, so injected runs take the fast path through ``getattr``.
    boundary_hook = getattr(ctx.injector, "frame_boundary", None)

    while index.value < total.value:
        if boundary_hook is not None:
            boundary_hook(ctx, rng, state)
        i = int(index.value)
        if i >= len(frames) or i < -len(frames):
            # A corrupted frame index walks off the frame table.
            raise SegmentationFault(i, "frame table overrun")
        # Negative in-range indices alias earlier frames (wrong data, no
        # trap).  The working copy is the in-memory frame buffer; pointer
        # corruption mutates it and the corruption flows downstream.
        frame = frames[i].copy()

        with ctx.scope("summarize.pipeline.frame"):
            ctx.tick(kernel_cost("frame.acquire_px") * frame_px)
            ctx.tick(kernel_cost("pipeline.frame_overhead"))

        window = ctx.window("summarize.pipeline.frame")
        if window is not None:
            from repro.faultinject.registers import Role

            window.gpr_address("frame_ptr", frame)
            window.gpr_cell("frame_idx", index, role=Role.CONTROL)
            window.gpr_cell("frame_total", total, role=Role.CONTROL)
            window.gpr_cell("fail_count", failures, role=Role.DATA)
            if state.current is not None:
                window.gpr_address("canvas_ptr", state.current.canvas, writes=True)
                window.gpr_address("coverage_ptr", state.current.coverage, writes=True)
            if state.prev_features is not None and len(state.prev_features):
                window.gpr_address("prev_desc_ptr", state.prev_features.descriptors)
                window.gpr_address("prev_coords_ptr", state.prev_features.coords)
            ctx.checkpoint(window)

        features = orb_features(
            frame,
            ctx,
            n_keypoints=config.n_keypoints,
            fast_threshold=config.fast_threshold,
        )

        if state.current is None or state.prev_features is None or state.prev_chain is None:
            state.current, state.prev_chain = _start_segment(
                frame, frame_shape, config, ctx, state.minis
            )
            state.prev_features = features
            state.outcomes.append(
                FrameOutcome(
                    index=i,
                    status="anchor",
                    chain=state.prev_chain.copy(),
                    mini_index=len(state.minis) - 1,
                )
            )
            failures.value = 0
            index.value = int(index.value) + 1
            continue

        try:
            pairwise = estimate_pairwise(
                features, state.prev_features, config, ctx, rng, frame_shape
            )
            chained = state.prev_chain @ pairwise.transform
            chained = state.current.validate_chain(chained, frame_shape)
        except InsufficientMatchesError:
            failures.value = int(failures.value) + 1
            # Library-internal invariant (the abort crash category):
            # the failure counter must stay within the frame budget.
            if not 0 < failures.value <= len(frames):
                from repro.runtime.errors import InternalAbortError

                raise InternalAbortError(
                    f"failure counter corrupted: {failures.value}"
                )
            state.outcomes.append(FrameOutcome(index=i, status="discarded"))
            if failures.value > config.max_consecutive_failures:
                # Scene change: anchor a fresh mini-panorama at this frame.
                state.current, state.prev_chain = _start_segment(
                    frame, frame_shape, config, ctx, state.minis
                )
                state.prev_features = features
                state.outcomes[-1] = FrameOutcome(
                    index=i,
                    status="anchor",
                    chain=state.prev_chain.copy(),
                    mini_index=len(state.minis) - 1,
                )
                failures.value = 0
            index.value = int(index.value) + 1
            continue

        with ctx.scope("summarize.pipeline.chain"):
            ctx.tick(kernel_cost("pipeline.anchor_update"))
        state.current.add(frame, chained, ctx)
        state.prev_chain = chained
        state.prev_features = features
        failures.value = 0
        state.outcomes.append(
            FrameOutcome(
                index=i,
                status="stitched",
                model_type=pairwise.model_type,
                num_matches=pairwise.num_matches,
                num_inliers=pairwise.num_inliers,
                chain=chained.copy(),
                mini_index=len(state.minis) - 1,
            )
        )
        index.value = int(index.value) + 1

    minis, outcomes = state.minis, state.outcomes
    panorama = _stack_minis(minis)
    # Divergence probe: the stitch stage's output is the full stacked
    # panorama — the same image the monitor classifies SDC against.
    probes.record("stitch", panorama)
    return VSResult(
        config=config,
        panorama=panorama,
        minis=minis,
        outcomes=outcomes,
        cycles=ctx.cycles,
    )


def _start_segment(
    frame: np.ndarray,
    frame_shape: tuple[int, int],
    config: VSConfig,
    ctx: ExecutionContext,
    minis: list[MiniPanorama],
) -> tuple[MiniPanorama, np.ndarray]:
    """Open a new mini-panorama anchored at ``frame``."""
    mini = MiniPanorama(frame_shape, config)
    chain = mini.place_anchor(frame, ctx)
    minis.append(mini)
    return mini, chain


def _stack_minis(minis: list[MiniPanorama]) -> np.ndarray:
    """The run's output image: mini-panorama canvases stacked vertically."""
    if not minis:
        return np.zeros((1, 1), dtype=np.uint8)
    return np.vstack([mini.canvas for mini in minis])
