"""Golden (error-free) run management.

Fault-injection campaigns need, per (algorithm, input): the golden output
image (the SDC reference), the golden cycle count (to draw uniformly
random injection cycles and to set the hang watchdog), and the execution
profile.  Golden runs are cached in-process because campaigns reuse them
across hundreds of injected runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.context import CostProfile, ExecutionContext
from repro.summarize.config import VSConfig
from repro.summarize.pipeline import VSResult, run_vs
from repro.video.frames import FrameStream


@dataclass
class GoldenRun:
    """The error-free reference execution of one (algorithm, input)."""

    config: VSConfig
    stream_name: str
    result: VSResult
    output: np.ndarray  # the golden output image
    total_cycles: int
    profile: CostProfile


_CACHE: dict[tuple[str, str, int], GoldenRun] = {}


def golden_run(stream: FrameStream, config: VSConfig, use_cache: bool = True) -> GoldenRun:
    """Run (or fetch) the golden execution for ``(config, stream)``."""
    key = (config.name, stream.name, hash(config))
    if use_cache and key in _CACHE:
        return _CACHE[key]

    profile = CostProfile()
    ctx = ExecutionContext(profile=profile)
    result = run_vs(stream, config, ctx)
    run = GoldenRun(
        config=config,
        stream_name=stream.name,
        result=result,
        output=result.panorama.copy(),
        total_cycles=ctx.cycles,
        profile=profile,
    )
    if use_cache:
        _CACHE[key] = run
    return run


def clear_golden_cache() -> None:
    """Drop all cached golden runs (tests use this for isolation)."""
    _CACHE.clear()
