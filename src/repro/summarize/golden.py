"""Golden (error-free) run management.

Fault-injection campaigns need, per (algorithm, input): the golden output
image (the SDC reference), the golden cycle count (to draw uniformly
random injection cycles and to set the hang watchdog), and the execution
profile.  Golden runs are cached in-process because campaigns reuse them
across hundreds of injected runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.runtime.context import CostProfile, ExecutionContext
from repro.summarize.config import VSConfig
from repro.summarize.pipeline import VSResult, run_vs
from repro.video.frames import FrameStream


@dataclass
class GoldenRun:
    """The error-free reference execution of one (algorithm, input)."""

    config: VSConfig
    stream_name: str
    result: VSResult
    output: np.ndarray  # the golden output image
    total_cycles: int
    profile: CostProfile


@dataclass
class GoldenCacheStats:
    """Counters for golden-run cache effectiveness (tests assert on
    ``computes`` to prove figure entry points share golden runs)."""

    computes: int = 0
    hits: int = 0


_CACHE: dict[tuple, GoldenRun] = {}
_STATS = GoldenCacheStats()

#: Fast-forward snapshot tapes, cached alongside the golden runs they
#: are captured against.  ``None`` marks a workload whose shape the
#: recorder cannot snapshot (it degrades to full executions).
_TAPES: dict[tuple, object] = {}

#: Per-process FastForward handles over the cached tapes.  Cached so the
#: boundary fan-out state hanging off a handle (shared per-boundary
#: restores, materialized once per worker) survives across campaigns in
#: the same process instead of being rebuilt per campaign.
_FF_HANDLES: dict[tuple, object] = {}


def _cache_key(stream: FrameStream, config: VSConfig) -> tuple:
    """Cache key: the full ``(input, algorithm, scale)`` identity.

    The stream's length and frame shape are part of the key because the
    same named input exists at several experiment scales — keying on the
    name alone would silently serve a golden run from the wrong scale.
    """
    shape = stream.frame_shape if len(stream) else (0, 0)
    return (stream.name, len(stream), shape, config.name, hash(config))


def golden_run(stream: FrameStream, config: VSConfig, use_cache: bool = True) -> GoldenRun:
    """Run (or fetch) the golden execution for ``(config, stream)``."""
    key = _cache_key(stream, config)
    if use_cache and key in _CACHE:
        _STATS.hits += 1
        telemetry.counter_inc("golden.cache_hit")
        return _CACHE[key]

    _STATS.computes += 1
    telemetry.counter_inc("golden.cache_compute")
    profile = CostProfile()
    ctx = ExecutionContext(profile=profile)
    with telemetry.span("summarize.golden", ctx=ctx):
        result = run_vs(stream, config, ctx)
    run = GoldenRun(
        config=config,
        stream_name=stream.name,
        result=result,
        output=result.panorama.copy(),
        total_cycles=ctx.cycles,
        profile=profile,
    )
    if use_cache:
        _CACHE[key] = run
    return run


def golden_stage_signature(stream: FrameStream, config: VSConfig) -> dict[str, tuple[int, ...]]:
    """Per-stage golden checksum sequences for ``(config, stream)``.

    Re-runs the (deterministic) golden execution once under a stage
    probe — see :mod:`repro.forensics.probes` — and returns each
    pipeline stage's checksum sequence.  This is the reference that
    per-injection divergence records are computed against; campaign
    workloads capture it through
    :meth:`repro.faultinject.monitor.FaultMonitor.golden_signature`,
    which memoizes per workload, so the probed re-run happens once per
    process, not once per injection.
    """
    from repro.forensics import probes

    probe = probes.StageProbe()
    ctx = ExecutionContext()
    with probes.capturing(probe), telemetry.span("summarize.golden_probe", ctx=ctx):
        run_vs(stream, config, ctx)
    return probe.signature()


def golden_fast_forward(stream: FrameStream, config: VSConfig):
    """The fast-forward handle for ``(config, stream)``, or ``None``.

    Captures the snapshot tape once per process per workload — one
    instrumented golden-run's worth of work — and caches it next to the
    golden run itself, since both share a lifetime (anything that
    invalidates the golden run invalidates every snapshot).  Returns the
    process-cached :class:`~repro.faultinject.fastforward.FastForward`
    handle over the cached tape (cached so boundary fan-out state
    amortizes across campaigns), or ``None`` when the workload cannot
    be snapshotted.
    """
    from repro.faultinject.fastforward import (
        FastForward,
        SnapshotUnsupported,
        capture_tape,
    )

    key = _cache_key(stream, config)
    handle = _FF_HANDLES.get(key)
    if handle is not None:
        telemetry.counter_inc("golden.tape_hit")
        return handle
    if key in _TAPES:
        telemetry.counter_inc("golden.tape_hit")
        tape = _TAPES[key]
    else:
        telemetry.counter_inc("golden.tape_capture")
        golden = golden_run(stream, config)
        try:
            tape = capture_tape(stream, config, golden.output, golden.total_cycles)
        except SnapshotUnsupported:
            tape = None
        _TAPES[key] = tape
    if tape is None:
        return None
    handle = FastForward(tape, stream, config)
    _FF_HANDLES[key] = handle
    return handle


def golden_cache_stats() -> GoldenCacheStats:
    """The process-wide cache counters (reset by ``clear_golden_cache``)."""
    return _STATS


def clear_golden_cache() -> None:
    """Drop all cached golden runs and reset the counters (test isolation).

    Also drops the forensics layer's cached golden stage signatures
    (keyed by workload identity, so resetting golden runs invalidates
    the workloads they were captured from) and the parallel engine's
    cached fast-forward handles (they wrap tapes cached here).
    """
    from repro.faultinject.parallel import clear_fast_forward_cache
    from repro.forensics import probes

    _CACHE.clear()
    _TAPES.clear()
    _FF_HANDLES.clear()
    _STATS.computes = 0
    _STATS.hits = 0
    probes.clear_golden_signatures()
    clear_fast_forward_cache()
