"""The VS application: pipeline, approximations and golden-run management."""

from repro.summarize.approximations import (
    ALGORITHM_FACTORIES,
    baseline_config,
    config_for,
    kds_config,
    rfd_config,
    sm_config,
)
from repro.summarize.config import VSConfig
from repro.summarize.golden import (
    GoldenCacheStats,
    GoldenRun,
    clear_golden_cache,
    golden_cache_stats,
    golden_run,
)
from repro.summarize.pipeline import FrameOutcome, VSResult, run_vs
from repro.summarize.stitcher import (
    MiniPanorama,
    PairwiseTransform,
    estimate_pairwise,
    match_features,
    matching_subset,
)

__all__ = [
    "VSConfig",
    "baseline_config",
    "rfd_config",
    "kds_config",
    "sm_config",
    "config_for",
    "ALGORITHM_FACTORIES",
    "FrameOutcome",
    "VSResult",
    "run_vs",
    "MiniPanorama",
    "PairwiseTransform",
    "estimate_pairwise",
    "match_features",
    "matching_subset",
    "GoldenRun",
    "golden_run",
    "clear_golden_cache",
    "golden_cache_stats",
    "GoldenCacheStats",
]
