"""Track overlay on the coverage panorama.

The final integration step of the paper's workflow (Fig. 2): "both
intermediate results are integrated by overlaying the tracks (of moving
objects) on the panorama to create a comprehensive and concise
summarization of a whole UAV video".
"""

from __future__ import annotations

import numpy as np

from repro.imaging.draw import draw_line, fill_disk
from repro.imaging.image import saturate_cast_u8
from repro.perfmodel.cost import kernel_cost
from repro.runtime.context import ExecutionContext
from repro.events.tracking import Track

#: Rendered tone of track polylines (near-white).
TRACK_TONE = 255.0

#: Rendered tone of track endpoints.
ENDPOINT_TONE = 0.0


def overlay_tracks(
    panorama: np.ndarray,
    tracks: list[Track],
    ctx: ExecutionContext,
    mini_canvas_h: int | None = None,
) -> np.ndarray:
    """Draw confirmed tracks onto a copy of the (stacked) panorama.

    Track coordinates live in their mini-panorama's canvas; for a
    stacked output image, ``mini_canvas_h`` offsets each track by its
    mini index.
    """
    field = panorama.astype(np.float64)
    height, width = field.shape
    for track in tracks:
        if not track.confirmed or len(track.points) < 2:
            continue
        offset_y = track.mini_index * mini_canvas_h if mini_canvas_h else 0
        with ctx.scope("events.overlay.draw"):
            ctx.tick(kernel_cost("events.overlay_px") * 64 * len(track.points))
        for a, b in zip(track.points, track.points[1:]):
            draw_line(
                field,
                a.x,
                a.y + offset_y,
                b.x,
                b.y + offset_y,
                value=TRACK_TONE,
                thickness=1,
            )
        head = track.points[-1]
        fill_disk(field, head.x, head.y + offset_y, 2.5, ENDPOINT_TONE)
        fill_disk(field, head.x, head.y + offset_y, 1.2, TRACK_TONE)
    return saturate_cast_u8(np.clip(field, 0, 255))
