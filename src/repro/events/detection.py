"""Moving-object detection by aligned frame differencing.

The paper's event-summarization branch (Fig. 2) detects moving objects
such as vehicles and pedestrians.  With a moving camera, consecutive
frames must first be registered; the pipeline already estimates those
transforms for coverage summarization, so detection warps the previous
frame into the current frame's coordinates, differences the overlap and
extracts connected components of significant change.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.imaging.image import as_gray, blank
from repro.imaging.warp import warp_into
from repro.perfmodel.cost import kernel_cost
from repro.runtime.context import ExecutionContext


@dataclass(frozen=True)
class Detection:
    """One detected moving blob, in current-frame pixel coordinates."""

    x: float  # centroid
    y: float
    area: int  # pixels above threshold
    bbox: tuple[int, int, int, int]  # (x0, y0, x1, y1), exclusive upper bounds


def detect_moving_objects(
    current: np.ndarray,
    previous: np.ndarray,
    prev_to_cur: np.ndarray,
    ctx: ExecutionContext,
    diff_threshold: int = 60,
    min_area: int = 4,
    max_detections: int = 16,
) -> list[Detection]:
    """Detect movers between two registered frames.

    ``prev_to_cur`` maps previous-frame pixel coordinates into the
    current frame.  Returns the detections sorted by descending area.
    """
    current = as_gray(current)
    previous = as_gray(previous)
    frame_h, frame_w = current.shape

    # Register the previous frame onto the current one.
    warped_prev = blank(frame_h, frame_w)
    coverage = blank(frame_h, frame_w)
    warp_into(warped_prev, coverage, previous, prev_to_cur, ctx)

    with ctx.scope("events.detect.diff"):
        ctx.tick(kernel_cost("events.diff_px") * frame_h * frame_w)
        overlap = coverage > 0
        diff = np.abs(current.astype(np.int16) - warped_prev.astype(np.int16))
        motion = (diff > diff_threshold) & overlap

    with ctx.scope("events.detect.label"):
        ctx.tick(kernel_cost("events.label_px") * frame_h * frame_w)
        # Morphological opening removes single-pixel registration noise.
        cleaned = ndimage.binary_opening(motion, structure=np.ones((2, 2), dtype=bool))
        labels, n_blobs = ndimage.label(cleaned)
        if n_blobs == 0:
            return []
        slices = ndimage.find_objects(labels)
        detections = []
        for blob_index, blob_slice in enumerate(slices, start=1):
            mask = labels[blob_slice] == blob_index
            area = int(mask.sum())
            if area < min_area:
                continue
            ys, xs = np.nonzero(mask)
            y0, x0 = blob_slice[0].start, blob_slice[1].start
            detections.append(
                Detection(
                    x=float(xs.mean() + x0),
                    y=float(ys.mean() + y0),
                    area=area,
                    bbox=(
                        x0,
                        y0,
                        blob_slice[1].stop,
                        blob_slice[0].stop,
                    ),
                )
            )

    detections.sort(key=lambda d: -d.area)
    return detections[:max_detections]
