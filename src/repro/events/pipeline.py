"""Full summarization: coverage + event branches, integrated.

Reconstructs the paper's complete Fig. 2 workflow around the coverage
pipeline this repository's resiliency experiments target: run coverage
summarization, reuse its per-frame alignment chains to detect moving
objects between consecutive stitched frames, track them in panorama
space, and overlay the tracks on the panorama.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.events.detection import Detection, detect_moving_objects
from repro.events.overlay import overlay_tracks
from repro.events.tracking import NearestNeighbourTracker, Track
from repro.imaging.geometry import apply_transform, invert_transform
from repro.runtime.context import ExecutionContext
from repro.summarize.config import VSConfig
from repro.summarize.pipeline import VSResult, run_vs
from repro.video.frames import FrameStream, drop_frames_randomly


@dataclass
class FullSummary:
    """Coverage + event summarization of one video."""

    coverage: VSResult
    tracks: list[Track] = field(default_factory=list)
    detections_per_frame: dict[int, list[Detection]] = field(default_factory=dict)
    overlay: np.ndarray | None = None

    @property
    def num_tracks(self) -> int:
        """Confirmed moving-object tracks."""
        return len(self.tracks)


def run_full_summarization(
    stream: FrameStream,
    config: VSConfig,
    ctx: ExecutionContext,
    diff_threshold: int = 60,
    min_area: int = 4,
) -> FullSummary:
    """Run the complete workflow: coverage, detection, tracking, overlay."""
    coverage = run_vs(stream, config, ctx)

    # The event branch sees the same frames coverage processed.
    if config.drop_fraction > 0.0:
        drop_rng = np.random.default_rng(config.approx_seed)
        stream = drop_frames_randomly(stream, config.drop_fraction, drop_rng)
    frames = list(stream)

    tracker = NearestNeighbourTracker()
    detections_per_frame: dict[int, list[Detection]] = {}
    previous_outcome = None
    for outcome in coverage.outcomes:
        if outcome.status not in ("anchor", "stitched") or outcome.chain is None:
            continue
        if (
            previous_outcome is not None
            and previous_outcome.mini_index == outcome.mini_index
        ):
            current_frame = frames[outcome.index]
            previous_frame = frames[previous_outcome.index]
            # prev-frame -> cur-frame coordinates through the shared canvas.
            prev_to_cur = invert_transform(outcome.chain) @ previous_outcome.chain
            detections = detect_moving_objects(
                current_frame,
                previous_frame,
                prev_to_cur,
                ctx,
                diff_threshold=diff_threshold,
                min_area=min_area,
            )
            detections_per_frame[outcome.index] = detections
            if detections:
                panorama_points = apply_transform(
                    outcome.chain,
                    np.array([[d.x, d.y] for d in detections]),
                )
                tracker.update(
                    [(float(x), float(y)) for x, y in panorama_points],
                    frame_index=outcome.index,
                    mini_index=outcome.mini_index,
                    ctx=ctx,
                )
            else:
                tracker.update([], outcome.index, outcome.mini_index, ctx)
        previous_outcome = outcome

    tracks = tracker.finish()
    mini_h = coverage.minis[0].canvas_h if coverage.minis else None
    overlay = overlay_tracks(coverage.panorama, tracks, ctx, mini_canvas_h=mini_h)
    return FullSummary(
        coverage=coverage,
        tracks=tracks,
        detections_per_frame=detections_per_frame,
        overlay=overlay,
    )
