"""Event summarization: detection, tracking and panorama overlay."""

from repro.events.detection import Detection, detect_moving_objects
from repro.events.overlay import overlay_tracks
from repro.events.pipeline import FullSummary, run_full_summarization
from repro.events.tracking import NearestNeighbourTracker, Track, TrackPoint

__all__ = [
    "Detection",
    "detect_moving_objects",
    "NearestNeighbourTracker",
    "Track",
    "TrackPoint",
    "overlay_tracks",
    "FullSummary",
    "run_full_summarization",
]
