"""Multi-object tracking over panorama-space detections.

A light nearest-neighbour tracker with constant-velocity prediction and
tentative/confirmed/lost track states — the "tracking of moving objects"
stage of the paper's event summarization (Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.perfmodel.cost import kernel_cost
from repro.runtime.context import ExecutionContext


@dataclass
class TrackPoint:
    """One confirmed observation of a track."""

    frame_index: int
    x: float  # panorama-canvas coordinates
    y: float


@dataclass
class Track:
    """One tracked moving object."""

    track_id: int
    mini_index: int  # which mini-panorama the track lives in
    points: list[TrackPoint] = field(default_factory=list)
    hits: int = 0
    misses: int = 0
    confirmed: bool = False

    @property
    def last(self) -> TrackPoint:
        """Most recent observation."""
        return self.points[-1]

    def velocity(self) -> tuple[float, float]:
        """Estimated per-frame velocity from the last two observations."""
        if len(self.points) < 2:
            return 0.0, 0.0
        a, b = self.points[-2], self.points[-1]
        gap = max(1, b.frame_index - a.frame_index)
        return (b.x - a.x) / gap, (b.y - a.y) / gap

    def predict(self, frame_index: int) -> tuple[float, float]:
        """Constant-velocity position prediction."""
        vx, vy = self.velocity()
        gap = frame_index - self.last.frame_index
        return self.last.x + vx * gap, self.last.y + vy * gap


class NearestNeighbourTracker:
    """Greedy gated nearest-neighbour data association."""

    def __init__(
        self,
        gate_distance: float = 18.0,
        confirm_after: int = 2,
        drop_after_misses: int = 4,
    ) -> None:
        self.gate_distance = gate_distance
        self.confirm_after = confirm_after
        self.drop_after_misses = drop_after_misses
        self.active: list[Track] = []
        self.finished: list[Track] = []
        self._next_id = 0

    def update(
        self,
        detections: list[tuple[float, float]],
        frame_index: int,
        mini_index: int,
        ctx: ExecutionContext,
    ) -> None:
        """Associate panorama-space detections with tracks."""
        with ctx.scope("events.track.associate"):
            ctx.tick(
                kernel_cost("events.track_det")
                * max(1, len(detections))
                * max(1, len(self.active))
            )
        candidates = [t for t in self.active if t.mini_index == mini_index]
        unmatched = list(range(len(detections)))
        # Greedy association: closest (track, detection) pairs first.
        pairs: list[tuple[float, Track, int]] = []
        for track in candidates:
            px, py = track.predict(frame_index)
            for det_index in unmatched:
                dx, dy = detections[det_index]
                distance = float(np.hypot(dx - px, dy - py))
                if distance <= self.gate_distance:
                    pairs.append((distance, track, det_index))
        pairs.sort(key=lambda item: item[0])

        matched_tracks: set[int] = set()
        matched_dets: set[int] = set()
        for _distance, track, det_index in pairs:
            if id(track) in matched_tracks or det_index in matched_dets:
                continue
            matched_tracks.add(id(track))
            matched_dets.add(det_index)
            dx, dy = detections[det_index]
            track.points.append(TrackPoint(frame_index, dx, dy))
            track.hits += 1
            track.misses = 0
            if track.hits >= self.confirm_after:
                track.confirmed = True

        # Unmatched existing tracks accumulate misses.
        still_active = []
        for track in self.active:
            if track.mini_index != mini_index:
                still_active.append(track)
                continue
            if id(track) not in matched_tracks:
                track.misses += 1
            if track.misses > self.drop_after_misses:
                self._retire(track)
            else:
                still_active.append(track)
        self.active = still_active

        # Unmatched detections spawn tentative tracks.
        for det_index in range(len(detections)):
            if det_index in matched_dets:
                continue
            dx, dy = detections[det_index]
            track = Track(track_id=self._next_id, mini_index=mini_index)
            track.points.append(TrackPoint(frame_index, dx, dy))
            track.hits = 1
            self._next_id += 1
            self.active.append(track)

    def _retire(self, track: Track) -> None:
        if track.confirmed:
            self.finished.append(track)

    def finish(self) -> list[Track]:
        """Close all tracks; returns every confirmed track."""
        for track in self.active:
            self._retire(track)
        self.active = []
        return sorted(self.finished, key=lambda t: t.track_id)
