"""Command-line interface for the repro library.

Subcommands mirror the library's main workflows::

    python -m repro.cli summarize --input input2 --out panorama.pgm
    python -m repro.cli campaign  --input input1 --kind gpr -n 200
    python -m repro.cli events    --frames 32 --out overlay.pgm
    python -m repro.cli experiment fig10 --scale tiny
    python -m repro.cli protect   --input input2 -n 200 --tolerance 10
    python -m repro.cli trace summarize trace.jsonl

``--trace PATH`` on the summarize / campaign / experiment commands
enables stage-level telemetry for the run and writes a JSONL trace file
(see ``docs/observability.md``); ``trace summarize`` renders the
stage-time table from such a file.

``campaign`` additionally takes ``--journal PATH`` (fsync'd checkpoint
journal for crash safety), ``--resume PATH`` (finish an interrupted
journaled campaign; exits 3 when interrupted by the test hook) and
``--watchdog-factor F`` (wall-clock hang deadline as a multiple of the
golden run's wall time) — see ``docs/resilience.md``.

Forensics (see ``docs/forensics.md``): ``campaign --probe`` turns on
stage-boundary divergence tracing, ``campaign --store DIR`` persists
the campaign record under a content-addressed id, and ``report``
renders stored campaigns::

    python -m repro.cli campaign --probe --store runs/ -n 200
    python -m repro.cli report list runs/
    python -m repro.cli report show runs/ <id> --format html --out r.html
    python -m repro.cli report diff runs/ <id_a> <id_b>
    python -m repro.cli report query runs/ --where outcome=sdc \
        --group-by register_class,stage

``report diff`` exits 4 when a statistically significant outcome-rate
shift is flagged, 0 when the campaigns are consistent.  ``report
query`` slices the whole corpus down to per-injection granularity
through the store's SQLite index (see ``docs/store.md``); ``repro
store migrate DIR`` converts a legacy single-log store to the sharded
v2 layout (lossless, id-stable) and ``repro store rebuild DIR``
re-derives the side index from the raw record segments.

Adaptive sampling (see ``docs/sampling.md``): ``campaign --sampling
stratified --ci-width 0.02`` stratifies draws over (register-class x
bit-octet x resume-boundary) cells and stops each cell once its Wilson
CI converges, reporting raw and Horvitz-Thompson reweighted rates.

Live observability (see ``docs/observability.md``): ``campaign
--status PATH`` maintains a crash-safe JSON status snapshot (also via
``REPRO_STATUS=PATH``), ``--serve [PORT]`` adds ``/status`` and
Prometheus ``/metrics`` HTTP endpoints, a flight recorder dumps the
recent event ring on interrupts/hangs, and ``repro watch status.json``
tails a snapshot live.  ``repro report trend <store>`` renders outcome
and performance trajectories across stored campaigns (exit 4 when the
z-gate flags a shift between adjacent campaigns).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.analysis.experiments import scale_from_env
from repro.analysis.reporting import campaign_to_dict, save_json
from repro.faultinject.campaign import CampaignConfig, run_campaign
from repro.faultinject.parallel import VSWorkloadSpec, default_workers
from repro.faultinject.registers import RegKind
from repro.imaging.io import save_pgm
from repro.runtime.context import ExecutionContext
from repro.summarize.approximations import ALGORITHM_FACTORIES, config_for
from repro.summarize.golden import golden_run
from repro.summarize.pipeline import run_vs
from repro.video.synthetic import make_event_input, make_input


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {raw!r}")
    return value


def _strata_grid(raw: str) -> tuple[int, int, int]:
    """Parse a ``RxBxC`` stratification grid (e.g. ``4x8x8``)."""
    parts = raw.lower().split("x")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"must be REGxBITxCYCLE (e.g. 4x8x8), got {raw!r}"
        )
    try:
        grid = tuple(int(part) for part in parts)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be REGxBITxCYCLE (e.g. 4x8x8), got {raw!r}"
        ) from None
    if any(value < 1 for value in grid):
        raise argparse.ArgumentTypeError(f"grid sizes must be >= 1, got {raw!r}")
    return grid


@contextlib.contextmanager
def _maybe_traced(args: argparse.Namespace):
    """Enable telemetry for the command when ``--trace PATH`` was given.

    The trace (span events plus the final metrics snapshot) is written
    to the requested path when the command body finishes — also on
    error, so a crashed run still leaves its partial trace behind.
    """
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        yield
        return
    was_enabled = telemetry.enabled()
    tracer = telemetry.enable()
    try:
        yield
    finally:
        from repro.telemetry.export import write_trace

        write_trace(trace_path, tracer, meta={"argv": sys.argv[1:]})
        if not was_enabled:
            telemetry.disable()
        print(f"trace written to {trace_path}")


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="enable stage-level telemetry and write a JSONL trace here",
    )


def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--input", default="input2", choices=["input1", "input2"], help="synthetic input"
    )
    parser.add_argument("--frames", type=int, default=48, help="frames to generate")
    parser.add_argument(
        "--algorithm",
        default="VS",
        choices=list(ALGORITHM_FACTORIES),
        help="VS variant to run",
    )


def cmd_summarize(args: argparse.Namespace) -> int:
    """Run coverage summarization and save the panorama."""
    with _maybe_traced(args):
        stream = make_input(args.input, n_frames=args.frames)
        config = config_for(args.algorithm)
        ctx = ExecutionContext()
        result = run_vs(stream, config, ctx)
        print(
            f"{config.name} on {args.input}: stitched={result.frames_stitched} "
            f"discarded={result.frames_discarded} minis={result.num_minis} "
            f"cycles={ctx.cycles / 1e6:.1f}M"
        )
        if args.out:
            save_pgm(args.out, result.panorama)
            print(f"panorama written to {args.out}")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run a fault-injection campaign and print the resiliency profile."""
    import time

    from repro.faultinject.journal import CampaignInterrupted
    from repro.faultinject.watchdog import WatchdogPolicy
    from repro.observe.session import observe_campaign, resolve_status_path

    # Resolve the worker count before the (expensive) golden run, so a
    # malformed REPRO_WORKERS fails fast with a clear error.
    workers = args.workers if args.workers else default_workers()
    # Likewise a malformed --heartbeat-interval / REPRO_HEARTBEAT_INTERVAL.
    telemetry.resolve_heartbeat_interval(args.heartbeat_interval)
    journal_path = args.resume if args.resume is not None else args.journal
    status_path = resolve_status_path(
        str(args.status) if args.status is not None else None
    )
    observing = status_path is not None or args.serve is not None
    with _maybe_traced(args):
        stream = make_input(args.input, n_frames=args.frames)
        config = config_for(args.algorithm)
        golden_start = time.perf_counter()
        golden = golden_run(stream, config)
        golden_wall_s = time.perf_counter() - golden_start

        def workload(ctx: ExecutionContext) -> np.ndarray:
            return run_vs(stream, config, ctx).panorama

        watchdog = (
            WatchdogPolicy.from_golden(golden_wall_s, soft_factor=args.watchdog_factor)
            if args.watchdog_factor is not None
            else None
        )
        kind = RegKind.GPR if args.kind.lower() == "gpr" else RegKind.FPR
        campaign_config = CampaignConfig(
            n_injections=args.n,
            kind=kind,
            seed=args.seed,
            # Stored records score SDC quality, which needs the
            # corrupted outputs kept until build_record runs.
            keep_sdc_outputs=args.store is not None,
            workers=workers,
            watchdog=watchdog,
            probe=args.probe,
            fast_forward=args.fast_forward,
            boundary_batch=args.boundary_batch,
            sampling=args.sampling,
            ci_width=args.ci_width,
            round_size=args.round_size,
            max_injections=args.max_injections,
            strata=args.strata,
            heartbeat_interval=args.heartbeat_interval,
            quiet=args.quiet,
        )
        observe_cm = (
            observe_campaign(
                status_path,
                serve=args.serve is not None,
                serve_port=args.serve or 0,
                flight_path=args.flight_recorder,
            )
            if observing
            else contextlib.nullcontext()
        )
        try:
            with observe_cm as session:
                if session is not None and session.server is not None:
                    print(f"observatory serving at {session.server.url}")
                campaign = run_campaign(
                    workload,
                    golden.output,
                    golden.total_cycles,
                    campaign_config,
                    spec=VSWorkloadSpec.for_stream(stream, config),
                    journal_path=journal_path,
                    resume=args.resume is not None,
                )
        except CampaignInterrupted as interrupted:
            print(f"campaign interrupted: {interrupted}")
            if observing and session is not None and session.flight_dumped is not None:
                print(f"flight-recorder dump at {session.flight_dumped}")
            return 3
        if observing and session is not None:
            if status_path is not None:
                print(f"status snapshot at {status_path}")
            if session.flight_dumped is not None:
                print(f"flight-recorder dump at {session.flight_dumped}")
        counts = campaign.counts
        n_done = counts.total if campaign.sampling is not None else args.n
        print(
            f"{config.name} on {args.input}, {n_done} {kind.value.upper()} injections "
            f"({workers} worker{'s' if workers != 1 else ''}):"
        )
        if campaign.sampling is not None:
            sampling = campaign.sampling
            ht = sampling.ht_rates()
            for name, rate in sampling.raw_rates().items():
                print(f"  {name:6s} {rate:7.2%} raw | {ht[name]:7.2%} reweighted")
            print(
                f"  stratified: {sampling.rounds} rounds, "
                f"{sampling.cells_converged}/{len(sampling.cells)} cells converged, "
                f"{sampling.total_draws} draws "
                f"(uniform-equivalent {sampling.uniform_equivalent_draws()}, "
                f"saved {sampling.draws_saved()})"
            )
            if sampling.budget_exhausted:
                print("  warning: draw budget exhausted before full convergence")
        else:
            for name, rate in counts.rates().items():
                print(f"  {name:6s} {rate:7.2%}")
        if counts.crash:
            print(f"  crashes: {counts.crash_segv} segv / {counts.crash_abort} abort")
        if args.probe:
            from repro.forensics.divergence import summarize_divergence

            divergence = summarize_divergence(campaign.results)
            print(
                f"  divergence: {divergence['probed']} probed, "
                f"{divergence['absorbed']} absorbed before the stitch"
            )
        if args.out:
            save_json(args.out, campaign_to_dict(campaign))
            print(f"full record written to {args.out}")
        if args.store:
            from repro.forensics.store import CampaignStore

            cid = CampaignStore(args.store).put_campaign(
                campaign, golden_output=golden.output, label=args.label
            )
            print(f"stored campaign {cid} in {args.store}")
    return 0


def cmd_events(args: argparse.Namespace) -> int:
    """Run the full coverage + event summarization workflow."""
    from repro.events.pipeline import run_full_summarization

    event_input = make_event_input(n_frames=args.frames, n_objects=args.objects)
    summary = run_full_summarization(
        event_input.stream, config_for(args.algorithm), ExecutionContext()
    )
    print(
        f"coverage: stitched={summary.coverage.frames_stitched} "
        f"minis={summary.coverage.num_minis}; tracks={summary.num_tracks}"
    )
    for track in summary.tracks:
        print(
            f"  track {track.track_id}: {len(track.points)} observations, "
            f"frames {track.points[0].frame_index}-{track.points[-1].frame_index}"
        )
    if args.out and summary.overlay is not None:
        save_pgm(args.out, summary.overlay)
        print(f"overlay written to {args.out}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Run one paper experiment by figure name."""
    import os

    from repro.analysis import experiments

    os.environ.setdefault("REPRO_SCALE", args.scale)
    scale = scale_from_env(default=args.scale)
    entry_points = {
        "fig05": experiments.fig05_perf_energy,
        "fig06": experiments.fig06_output_quality,
        "fig08": experiments.fig08_profile,
        "fig09": experiments.fig09_coverage,
        "fig10": experiments.fig10_resiliency,
        "fig11a": experiments.fig11a_approx_resiliency,
        "fig11b": experiments.fig11b_hot_function,
        "fig12": experiments.fig12_sdc_quality,
        "fig13": experiments.fig13_diff_visualization,
    }
    #: Campaign-running figures accept a worker count; the rest are
    #: golden-run-only and always execute in-process.
    campaign_figures = {"fig09", "fig10", "fig11a", "fig11b", "fig12"}
    with _maybe_traced(args):
        if args.figure in campaign_figures:
            workers = args.workers if args.workers else default_workers()
            result = entry_points[args.figure](scale, workers=workers)
        else:
            result = entry_points[args.figure](scale)
        print(f"{args.figure} at scale {scale.name}: done")
        # Structured results print compactly via their dataclass reprs.
        if isinstance(result, list):
            for item in result:
                print(f"  {item}")
        else:
            print(f"  {result}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Inspect a JSONL trace file written by ``--trace`` / REPRO_TRACE."""
    from repro.telemetry.export import render_summary, summarize_trace

    if args.trace_action == "summarize":
        summary = summarize_trace(args.path)
        print(render_summary(summary))
        return 0
    raise AssertionError(f"unknown trace action {args.trace_action!r}")


def cmd_watch(args: argparse.Namespace) -> int:
    """Tail a live campaign status snapshot (see ``campaign --status``)."""
    import json
    import time

    from repro.observe.status import read_status, render_status

    last_rendered = None
    deadline = (
        time.monotonic() + args.timeout if args.timeout is not None else None
    )
    while True:
        try:
            payload = read_status(args.path)
        except FileNotFoundError:
            payload = None
        except json.JSONDecodeError:
            # Unreachable with the atomic writer, but a foreign file
            # should surface as a wait, not a stack trace.
            payload = None
        if payload is not None:
            rendered = render_status(payload)
            if rendered != last_rendered:
                print(rendered)
                print()
                last_rendered = rendered
            if payload.get("state") in ("finished", "interrupted"):
                return 0
        elif args.once:
            print(f"no status snapshot at {args.path}")
            return 1
        if args.once:
            return 0
        if deadline is not None and time.monotonic() >= deadline:
            print(f"watch timed out after {args.timeout:g}s")
            return 1
        time.sleep(args.interval)


def cmd_report(args: argparse.Namespace) -> int:
    """Render reports and regression diffs over stored campaigns."""
    from repro.forensics.report import diff_records, render_diff, render_report
    from repro.forensics.store import CampaignStore

    store = CampaignStore(args.store)
    if args.report_action == "list":
        summaries = store.summaries()
        if not summaries:
            print(f"no campaigns stored in {args.store}")
            return 0
        for cid, summary in summaries.items():
            label = summary.get("label") or "-"
            mode = summary.get("sampling", "uniform")
            print(
                f"{cid}  {summary['kind']:3s} n={summary['n_injections']:<6d} "
                f"seed={summary['seed']:<6d} sdc={summary['sdc']:<5d} "
                f"probe={'y' if summary['probe'] else 'n'} {mode:10s}  {label}"
            )
        return 0
    if args.report_action == "show":
        text = render_report(store.get(args.id), fmt=args.format, cid=args.id)
        if args.out:
            Path(args.out).write_text(text)
            print(f"report written to {args.out}")
        else:
            print(text, end="")
        return 0
    if args.report_action == "diff":
        diff = diff_records(store.get(args.id_a), store.get(args.id_b))
        text = render_diff(diff, fmt=args.format, cid_a=args.id_a, cid_b=args.id_b)
        if args.out:
            Path(args.out).write_text(text)
            print(f"diff written to {args.out}")
        else:
            print(text, end="")
        return 4 if diff["flagged"] else 0
    if args.report_action == "trend":
        from repro.observe.trend import build_trend, render_trend

        trend = build_trend(store, bench_path=args.bench)
        text = render_trend(trend, fmt=args.format)
        if args.out:
            Path(args.out).write_text(text)
            print(f"trend dashboard written to {args.out}")
        else:
            print(text, end="")
        return 4 if trend["flagged"] else 0
    if args.report_action == "query":
        from repro.forensics.query import (
            QueryError,
            StoreQuery,
            query_sections,
            run_query,
        )
        from repro.forensics.report import render_sections

        try:
            query = StoreQuery.from_options(where=args.where, group_by=args.group_by)
        except QueryError as exc:
            print(f"repro report query: {exc}", file=sys.stderr)
            return 2
        result = run_query(store, query)
        text = render_sections(
            f"Store query: {args.store}", query_sections(result), fmt=args.format
        )
        if args.out:
            Path(args.out).write_text(text)
            print(f"query result written to {args.out}")
        else:
            print(text, end="")
        return 0
    raise AssertionError(f"unknown report action {args.report_action!r}")


def cmd_store(args: argparse.Namespace) -> int:
    """Maintain a result store: v1->v2 migration and index rebuilds."""
    from repro.forensics.store import StoreError, migrate_store, rebuild_store

    if args.store_action == "migrate":
        try:
            report = migrate_store(args.store)
        except StoreError as exc:
            print(f"repro store migrate: {exc}", file=sys.stderr)
            return 2
        print(
            f"migrated {report.records} record(s) in {args.store} to the v2 "
            f"layout: {report.segments} segment(s), ids unchanged"
        )
        for backup in report.backups:
            print(f"  v1 file kept as {backup}")
        return 0
    if args.store_action == "rebuild":
        info = rebuild_store(args.store)
        print(
            f"rebuilt the v{info['layout']} side index of {args.store}: "
            f"{info['records']} record(s)"
        )
        return 0
    raise AssertionError(f"unknown store action {args.store_action!r}")


def cmd_protect(args: argparse.Namespace) -> int:
    """Plan selective protection from a fresh campaign."""
    from repro.protection import plan_protection, symptom_coverage
    from repro.quality import compare_outputs

    stream = make_input(args.input, n_frames=args.frames)
    config = config_for(args.algorithm)
    golden = golden_run(stream, config)

    def workload(ctx: ExecutionContext) -> np.ndarray:
        return run_vs(stream, config, ctx).panorama

    campaign = run_campaign(
        workload,
        golden.output,
        golden.total_cycles,
        CampaignConfig(n_injections=args.n, kind=RegKind.GPR, seed=args.seed),
    )
    qualities = {
        index: compare_outputs(golden.output, result.output)
        for index, result in enumerate(campaign.results)
        if result.is_sdc and result.output is not None
    }
    coverage = symptom_coverage(campaign)
    plan = plan_protection(campaign, qualities, golden.profile, ed_tolerance=args.tolerance)
    cls = plan.classification
    print(f"symptom detectors catch {coverage.detector_coverage:.0%} of harmful outcomes")
    print(
        f"SDCs: {cls.sdc_total} total, {cls.tolerable_sdc} tolerable at ED<={args.tolerance} "
        f"({cls.tolerable_fraction:.0%})"
    )
    print(f"protected scopes: {sorted(plan.protected_scopes) or 'none'}")
    print(f"modelled runtime overhead: {plan.runtime_overhead:.1%} "
          f"(vs 100% for full duplication)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_sum = subparsers.add_parser("summarize", help="run coverage summarization")
    _add_input_arguments(p_sum)
    p_sum.add_argument("--out", type=Path, default=None, help="output PGM path")
    _add_trace_argument(p_sum)
    p_sum.set_defaults(func=cmd_summarize)

    p_camp = subparsers.add_parser("campaign", help="run a fault-injection campaign")
    _add_input_arguments(p_camp)
    p_camp.add_argument("-n", type=int, default=100, help="injections")
    p_camp.add_argument("--kind", default="gpr", choices=["gpr", "fpr"])
    p_camp.add_argument("--seed", type=int, default=0)
    p_camp.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker processes (default: REPRO_WORKERS or the CPU count)",
    )
    p_camp.add_argument(
        "--journal",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a crash-safe checkpoint journal (JSONL) here; "
        "completed chunks survive a crash and can be resumed",
    )
    p_camp.add_argument(
        "--resume",
        type=Path,
        default=None,
        metavar="PATH",
        help="resume a previous campaign from its journal: replay "
        "journaled chunks, run only the remainder, keep journaling to "
        "the same file (bit-identical to an uninterrupted run)",
    )
    p_camp.add_argument(
        "--watchdog-factor",
        type=float,
        default=None,
        metavar="F",
        help="enable the wall-clock watchdog: an injected run still going "
        "after F times the golden run's wall time is classified HANG",
    )
    p_camp.add_argument(
        "--probe",
        action="store_true",
        help="trace per-stage divergence against the golden run "
        "(observational: outcomes stay bit-identical)",
    )
    p_camp.add_argument(
        "--no-fast-forward",
        action="store_false",
        dest="fast_forward",
        help="disable golden-prefix fast-forward and execute every "
        "injected run in full (results are bit-identical either way; "
        "this is the escape hatch for timing studies and debugging)",
    )
    p_camp.add_argument(
        "--no-boundary-batch",
        action="store_false",
        dest="boundary_batch",
        help="disable boundary fan-out: run one full snapshot restore "
        "per injection instead of grouping injections by frame boundary "
        "and sharing the restore (results are bit-identical either way; "
        "this is the reference path CI diffs batched campaigns against)",
    )
    p_camp.add_argument(
        "--sampling",
        default="uniform",
        choices=["uniform", "stratified"],
        help="plan-drawing strategy: 'uniform' (the paper's brute-force "
        "draw, byte-identical across releases for a given seed) or "
        "'stratified' (adaptive rounds over register/bit/boundary cells "
        "with per-cell Wilson-CI convergence stopping; -n is ignored — "
        "see docs/sampling.md)",
    )
    p_camp.add_argument(
        "--ci-width",
        type=float,
        default=0.02,
        metavar="W",
        help="stratified mode: stop sampling a cell once the widest "
        "Wilson 95%% CI over its outcome rates is at most W",
    )
    p_camp.add_argument(
        "--round-size",
        type=_positive_int,
        default=8,
        metavar="K",
        help="stratified mode: draws per unresolved cell per round "
        "(journals checkpoint once per round)",
    )
    p_camp.add_argument(
        "--max-injections",
        type=_positive_int,
        default=None,
        metavar="N",
        help="stratified mode: hard campaign-wide draw budget "
        "(default: sample until every cell converges)",
    )
    p_camp.add_argument(
        "--strata",
        type=_strata_grid,
        default=(4, 8, 8),
        metavar="RxBxC",
        help="stratified mode: cell grid as register-classes x "
        "bit-octets x max-cycle-strata (default 4x8x8; register classes "
        "and bit octets must divide 32 and 64)",
    )
    p_camp.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="DIR",
        help="persist the campaign record in this result store under a "
        "content-addressed id (see `repro report`)",
    )
    p_camp.add_argument(
        "--label",
        default=None,
        help="free-form label stored with the campaign record",
    )
    p_camp.add_argument("--out", type=Path, default=None, help="JSON record path")
    p_camp.add_argument(
        "--status",
        type=Path,
        default=None,
        metavar="PATH",
        help="maintain a crash-safe live status snapshot (atomic JSON "
        "rewritten on every campaign event; also via REPRO_STATUS=PATH); "
        "tail it with `repro watch PATH`",
    )
    p_camp.add_argument(
        "--serve",
        type=int,
        nargs="?",
        const=0,
        default=None,
        metavar="PORT",
        help="serve /status (JSON) and /metrics (Prometheus text) over "
        "HTTP on 127.0.0.1 while the campaign runs (PORT 0 or omitted = "
        "an ephemeral port, printed at startup)",
    )
    p_camp.add_argument(
        "--flight-recorder",
        type=Path,
        default=None,
        metavar="PATH",
        help="where to dump the flight-recorder event ring on interrupt/"
        "hang/worker failure (default: next to --status as "
        "*.flightrec.jsonl)",
    )
    p_camp.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        metavar="S",
        help="seconds between heartbeat progress lines (default: "
        "REPRO_HEARTBEAT_INTERVAL or 2.0)",
    )
    p_camp.add_argument(
        "--quiet",
        action="store_true",
        help="suppress heartbeat/annotation lines on stderr (progress "
        "still flows to --status / --serve subscribers)",
    )
    _add_trace_argument(p_camp)
    p_camp.set_defaults(func=cmd_campaign)

    p_events = subparsers.add_parser("events", help="full summarization with tracking")
    p_events.add_argument("--frames", type=int, default=32)
    p_events.add_argument("--objects", type=int, default=3)
    p_events.add_argument(
        "--algorithm", default="VS", choices=list(ALGORITHM_FACTORIES)
    )
    p_events.add_argument("--out", type=Path, default=None, help="overlay PGM path")
    p_events.set_defaults(func=cmd_events)

    p_exp = subparsers.add_parser("experiment", help="run one paper experiment")
    p_exp.add_argument(
        "figure",
        choices=["fig05", "fig06", "fig08", "fig09", "fig10", "fig11a", "fig11b", "fig12", "fig13"],
    )
    p_exp.add_argument("--scale", default="tiny", choices=["tiny", "quick", "medium", "paper"])
    p_exp.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker processes for campaign figures "
        "(default: REPRO_WORKERS or the CPU count)",
    )
    _add_trace_argument(p_exp)
    p_exp.set_defaults(func=cmd_experiment)

    p_trace = subparsers.add_parser("trace", help="inspect a JSONL trace file")
    trace_sub = p_trace.add_subparsers(dest="trace_action", required=True)
    p_trace_sum = trace_sub.add_parser(
        "summarize", help="render the per-stage time table from a trace"
    )
    p_trace_sum.add_argument("path", type=Path, help="trace JSONL file")
    p_trace_sum.set_defaults(func=cmd_trace)

    p_report = subparsers.add_parser("report", help="reports over stored campaigns")
    report_sub = p_report.add_subparsers(dest="report_action", required=True)

    def _add_report_io(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--format",
            default="terminal",
            choices=["terminal", "markdown", "html"],
            help="output format",
        )
        sub.add_argument("--out", type=Path, default=None, help="write here instead of stdout")

    p_rep_list = report_sub.add_parser("list", help="list stored campaigns")
    p_rep_list.add_argument("store", type=Path, help="result store directory")
    p_rep_list.set_defaults(func=cmd_report)

    p_rep_show = report_sub.add_parser("show", help="render one campaign report")
    p_rep_show.add_argument("store", type=Path, help="result store directory")
    p_rep_show.add_argument("id", help="campaign id (see `report list`)")
    _add_report_io(p_rep_show)
    p_rep_show.set_defaults(func=cmd_report)

    p_rep_diff = report_sub.add_parser(
        "diff", help="flag significant rate shifts between two campaigns (exit 4)"
    )
    p_rep_diff.add_argument("store", type=Path, help="result store directory")
    p_rep_diff.add_argument("id_a", help="baseline campaign id")
    p_rep_diff.add_argument("id_b", help="comparison campaign id")
    _add_report_io(p_rep_diff)
    p_rep_diff.set_defaults(func=cmd_report)

    p_rep_trend = report_sub.add_parser(
        "trend",
        help="outcome-rate and performance trajectories across stored "
        "campaigns (exit 4 when adjacent campaigns flag a z-test shift)",
    )
    p_rep_trend.add_argument("store", type=Path, help="result store directory")
    p_rep_trend.add_argument(
        "--bench",
        type=Path,
        default=None,
        metavar="PATH",
        help="BENCH_campaign.json perf trajectory to chart alongside",
    )
    _add_report_io(p_rep_trend)
    p_rep_trend.set_defaults(func=cmd_report)

    p_rep_query = report_sub.add_parser(
        "query",
        help="slice stored injections by register class / bit octet / "
        "stage / outcome through the store's SQLite index",
    )
    p_rep_query.add_argument("store", type=Path, help="result store directory")
    p_rep_query.add_argument(
        "--where",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="filter clause (repeatable; same field twice ORs the "
        "values, different fields AND) — fields: campaign, label, kind, "
        "sampling, seed, probe, outcome, crash_kind, register, bit, "
        "register_class, bit_octet, stage, last_stage, fired",
    )
    p_rep_query.add_argument(
        "--group-by",
        default="outcome",
        metavar="F1,F2",
        help="comma-separated grouping fields (default: outcome)",
    )
    _add_report_io(p_rep_query)
    p_rep_query.set_defaults(func=cmd_report)

    p_store = subparsers.add_parser(
        "store", help="maintain a result store (migration, index rebuild)"
    )
    store_sub = p_store.add_subparsers(dest="store_action", required=True)

    p_store_migrate = store_sub.add_parser(
        "migrate",
        help="convert a v1 single-log store to the sharded v2 layout "
        "(lossless; every record keeps its content-addressed id)",
    )
    p_store_migrate.add_argument("store", type=Path, help="result store directory")
    p_store_migrate.set_defaults(func=cmd_store)

    p_store_rebuild = store_sub.add_parser(
        "rebuild",
        help="re-derive the side index (SQLite for v2, index.jsonl for "
        "v1) from the raw record files, repairing torn segment tails",
    )
    p_store_rebuild.add_argument("store", type=Path, help="result store directory")
    p_store_rebuild.set_defaults(func=cmd_store)

    p_watch = subparsers.add_parser(
        "watch", help="tail a live campaign status snapshot"
    )
    p_watch.add_argument("path", type=Path, help="status JSON file (campaign --status)")
    p_watch.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="S",
        help="seconds between polls (default 1.0)",
    )
    p_watch.add_argument(
        "--once",
        action="store_true",
        help="render the current snapshot once and exit",
    )
    p_watch.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="give up after S seconds if the campaign never finishes",
    )
    p_watch.set_defaults(func=cmd_watch)

    p_prot = subparsers.add_parser("protect", help="plan selective protection")
    _add_input_arguments(p_prot)
    p_prot.add_argument("-n", type=int, default=150, help="injections")
    p_prot.add_argument("--seed", type=int, default=0)
    p_prot.add_argument("--tolerance", type=int, default=10, help="ED tolerance")
    p_prot.set_defaults(func=cmd_protect)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
